package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ess"
	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/workload"
)

// This file is the multi-tenant arm of the server: workloads beyond
// the pinned -workloads set are admitted on demand, their artifacts
// compiled at most once per signature (the flightGroup coalesces the
// herd) and held in the byte-budgeted signature-keyed ArtifactCache.
// Pinned workloads keep their eager build-at-startup lifecycle and are
// never evicted; on-demand tenants live and die by cache pressure.

// signatureFor computes a workload's full artifact signature: the
// canonical signature of its SQL text extended with the compile-time
// inputs that shape the artifact — EPP set, grid resolution, catalog
// scale. The extension matters: the Q91 dimensionality family shares
// one SQL body across five distinct artifacts, so the raw SQL
// signature alone would alias them in the cache and on the shard ring.
func (s *Server) signatureFor(spec workload.Spec) (query.Signature, error) {
	sig, err := query.Sign(spec.SQL)
	if err != nil {
		return query.Signature{}, err
	}
	res := s.cfg.Res
	if res <= 0 {
		res = spec.Res
	}
	parts := make([]string, 0, len(spec.EPPs)+2)
	for _, e := range spec.EPPs {
		parts = append(parts, "epp:"+e[0]+"="+e[1])
	}
	parts = append(parts,
		fmt.Sprintf("res:%d", res),
		fmt.Sprintf("scale:%g", s.cfg.Scale))
	return sig.Extend(parts...), nil
}

// buildSigIndex maps the pure-SQL signature of every registered
// workload spec to its spec name(s), so requests may identify their
// workload by SQL text alone. Multiple names per hash are expected
// (the Q91 family) — resolution then needs the workload field.
func buildSigIndex() map[uint64][]string {
	idx := make(map[uint64][]string)
	for _, name := range workload.Names() {
		spec, err := workload.ByName(name)
		if err != nil {
			continue
		}
		sig, err := query.Sign(spec.SQL)
		if err != nil {
			continue // a spec whose SQL we cannot sign is not SQL-addressable
		}
		idx[sig.Hash] = append(idx[sig.Hash], name)
	}
	for _, names := range idx {
		sort.Strings(names)
	}
	return idx
}

// getWorkload returns the state for a known workload name under the
// read lock.
func (s *Server) getWorkload(name string) (*workloadState, bool) {
	s.wmu.RLock()
	defer s.wmu.RUnlock()
	ws, ok := s.workloads[name]
	return ws, ok
}

// snapshotWorkloads returns the current workload states: pinned first
// in configuration order, then on-demand tenants sorted by name.
func (s *Server) snapshotWorkloads() []*workloadState {
	s.wmu.RLock()
	defer s.wmu.RUnlock()
	out := make([]*workloadState, 0, len(s.workloads))
	for _, name := range s.order {
		out = append(out, s.workloads[name])
	}
	extra := make([]string, 0)
	for name, ws := range s.workloads {
		if ws.onDemand {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, s.workloads[name])
	}
	return out
}

// resolveWorkload maps a request onto a workload state, creating an
// on-demand tenant when the name (or SQL signature) identifies a
// registered spec that is not pinned. On failure it writes the typed
// rejection and returns ok=false. When the request carries SQL, its
// canonical signature picks the spec: an unknown signature is 404, an
// ambiguous one (several specs share the SQL body) is a 400 naming the
// candidates unless the workload field disambiguates.
func (s *Server) resolveWorkload(w http.ResponseWriter, req *DiscoverRequest) (*workloadState, bool) {
	name := req.Workload
	if req.SQL != "" {
		sig, err := query.Sign(req.SQL)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, KindBadRequest, "unsignable sql: "+err.Error(), 0)
			return nil, false
		}
		cands := s.sigIdx[sig.Hash]
		switch {
		case len(cands) == 0:
			s.writeError(w, http.StatusNotFound, KindNotFound,
				fmt.Sprintf("no workload matches query signature %s", sig), 0)
			return nil, false
		case name != "":
			found := false
			for _, c := range cands {
				if c == name {
					found = true
					break
				}
			}
			if !found {
				s.writeError(w, http.StatusBadRequest, KindBadRequest,
					fmt.Sprintf("sql signature %s does not match workload %q (candidates: %s)",
						sig, name, strings.Join(cands, ", ")), 0)
				return nil, false
			}
		case len(cands) == 1:
			name = cands[0]
		default:
			s.writeError(w, http.StatusBadRequest, KindBadRequest,
				fmt.Sprintf("query signature %s is ambiguous (candidates: %s); set workload to disambiguate",
					sig, strings.Join(cands, ", ")), 0)
			return nil, false
		}
		req.Workload = name
	}
	if name == "" {
		s.writeError(w, http.StatusBadRequest, KindBadRequest, "workload or sql required", 0)
		return nil, false
	}
	if ws, ok := s.getWorkload(name); ok {
		return ws, true
	}
	spec, err := workload.ByName(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("unknown workload %q", name), 0)
		return nil, false
	}
	sig, err := s.signatureFor(spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, KindBadRequest,
			fmt.Sprintf("workload %s: %v", name, err), 0)
		return nil, false
	}
	s.wmu.Lock()
	ws, ok := s.workloads[name]
	if !ok {
		ws = &workloadState{
			name: name, spec: spec, onDemand: true, sigKey: sig.Hash,
			breaker: newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.cfg.Now),
			ready:   closedChan(),
		}
		s.workloads[name] = ws
	}
	s.wmu.Unlock()
	return ws, true
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Compile-attempt policy for coalesced on-demand builds: a waiter (or
// would-be leader) whose flight ends in a transient fault retries up
// to compileAttempts times, sleeping a capped exponential backoff with
// deterministic jitter between attempts so the re-herd is staggered,
// not synchronized.
const (
	compileAttempts    = 4
	compileBackoffBase = 5 * time.Millisecond
	compileBackoffMax  = 80 * time.Millisecond
)

// artifactFor returns the on-demand tenant's compiled artifact,
// consulting the signature-keyed cache first and coalescing concurrent
// compiles of the same signature into one flight. The injector drives
// two chaos sites: SiteCacheEvict evicts the entry before lookup
// (simulated memory pressure — the request sees a miss), and
// SiteCoalesceLeader faults the flight leader before it compiles.
// Leader faults do not poison waiters: the flight's error is delivered
// once, the flight is gone, and every affected request retries with
// jittered exponential backoff until a later leader succeeds or the
// attempt budget is spent.
func (s *Server) artifactFor(ctx context.Context, ws *workloadState, in *faultinject.Injector) (*core.Compiled, error) {
	key := ws.sigKey
	if in.Trip(faultinject.SiteCacheEvict) {
		if s.cache.Evict(key) {
			s.metrics.chaosEvicts.Add(1)
		}
	}
	if art, ok := s.cache.Get(key); ok {
		return art, nil
	}
	var lastErr error
	for attempt := 0; attempt < compileAttempts; attempt++ {
		if attempt > 0 {
			if err := s.backoff(ctx, in, attempt); err != nil {
				return nil, err
			}
			// A concurrent flight may have filled the cache while we slept.
			if art, ok := s.cache.Get(key); ok {
				return art, nil
			}
		}
		art, err, leader := s.flights.Do(ctx, key, func() (*core.Compiled, error) {
			if ferr := in.Check(faultinject.SiteCoalesceLeader); ferr != nil {
				s.metrics.leaderFaults.Add(1)
				return nil, ferr
			}
			c, cerr := s.compileTenant(ws)
			if cerr != nil {
				return nil, cerr
			}
			s.cache.Put(key, c, core.EstimateArtifactBytes(c))
			s.countCompile(ws.name)
			return c, nil
		})
		if !leader {
			s.metrics.coalesceWaits.Add(1)
		}
		if err == nil {
			return art, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !faultinject.IsTransient(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("compile of %s: retries exhausted: %w", ws.name, lastErr)
}

// backoff sleeps the capped exponential backoff for the attempt, with
// deterministic jitter from the request's fault substream (so even the
// retry timing of a chaos run replays from its seed), honoring ctx.
func (s *Server) backoff(ctx context.Context, in *faultinject.Injector, attempt int) error {
	d := compileBackoffBase << (attempt - 1)
	if d > compileBackoffMax {
		d = compileBackoffMax
	}
	// Jitter in [0.5, 1.0]x: staggers waiters without collapsing the
	// backoff to zero. A nil injector (chaos disarmed) jitters to 0.5x.
	sleep := time.Duration(float64(d) * (0.5 + in.Jitter(attempt)/2))
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// compileTenant builds an on-demand tenant's artifact. On-demand
// tenants are always eager: the lazy mode's refinement persistence is
// a pinned-workload feature, and an evictable artifact must be
// self-contained.
func (s *Server) compileTenant(ws *workloadState) (*core.Compiled, error) {
	sp, err := ws.spec.SpaceWith(s.cfg.Scale, ess.Config{Res: s.cfg.Res})
	if err != nil {
		return nil, err
	}
	return core.Compile(sp, core.CompileOptions{})
}

// countCompile records one completed (successful) compile for the
// workload. Coalesced herds compile once; the counter is how tests —
// and operators — verify that.
func (s *Server) countCompile(name string) {
	c, _ := s.compiles.LoadOrStore(name, &atomic.Int64{})
	c.(*atomic.Int64).Add(1)
	s.metrics.compiles.Add(1)
}

// CompileCount reports how many artifact compiles the named workload
// has paid on this server (pinned startup builds are not counted; the
// counter tracks the on-demand/coalesced path).
func (s *Server) CompileCount(name string) int64 {
	c, ok := s.compiles.Load(name)
	if !ok {
		return 0
	}
	return c.(*atomic.Int64).Load()
}

// SignatureKey reports the full artifact-signature hash the server
// computed for the named registered workload — the key it uses in the
// compile cache and on the shard ring. Tests use it to pre-compute
// request routing.
func (s *Server) SignatureKey(name string) (uint64, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	sig, err := s.signatureFor(spec)
	if err != nil {
		return 0, err
	}
	return sig.Hash, nil
}

// CacheStats exposes the artifact cache counters (tests and the
// /metrics endpoint read the same numbers).
func (s *Server) CacheStats() core.CacheStats { return s.cache.Stats() }

// OutcomeCacheStats exposes the deterministic outcome cache counters;
// ok is false when the cache is disabled (OutcomeCacheBytes < 0).
func (s *Server) OutcomeCacheStats() (core.CacheStats, bool) {
	if s.outcomes == nil {
		return core.CacheStats{}, false
	}
	return s.outcomes.Stats(), true
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 10*time.Second, clk.Now)

	if ok, _ := b.Allow(); !ok {
		t.Fatal("fresh breaker must be closed")
	}
	// Two failures + success: counter resets, still closed.
	b.Report(false)
	b.Report(false)
	b.Report(true)
	for i := 0; i < 2; i++ {
		b.Report(false)
	}
	if b.State() != "closed" {
		t.Fatalf("2 consecutive failures after reset: state %s", b.State())
	}
	b.Report(false) // third consecutive: trips
	if b.State() != "open" {
		t.Fatalf("threshold reached: state %s, want open", b.State())
	}
	if ok, wait := b.Allow(); ok || wait <= 0 {
		t.Fatalf("open breaker allowed a request (wait %v)", wait)
	}

	// Cooldown elapses: exactly one half-open probe.
	clk.Advance(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooldown elapsed: probe must be allowed")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second request during probe must be rejected")
	}
	// Probe fails: reopen, full cooldown again.
	b.Report(false)
	if b.State() != "open" {
		t.Fatalf("failed probe: state %s, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("reopened breaker allowed a request")
	}
	clk.Advance(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second probe must be allowed")
	}
	// A canceled probe (deadline abort) releases the slot without
	// closing or reopening.
	b.Cancel()
	if b.State() != "half-open" {
		t.Fatalf("canceled probe: state %s, want half-open", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe slot must be free after cancel")
	}
	b.Report(true)
	if b.State() != "closed" {
		t.Fatalf("successful probe: state %s, want closed", b.State())
	}
}

// testConfig serves the EQ example at a resolution small enough for
// sub-second compiles.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Workloads: []string{"EQ"},
		Scale:     0.2,
		Res:       6,
		Logf:      t.Logf,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestDiscoverEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	for _, alg := range []string{"planbouquet", "spillbound", "alignedbound"} {
		rec, body := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: alg, QA: 7})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", alg, rec.Code, body)
		}
		var resp DiscoverResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Completed || resp.SubOpt < 1 || resp.Steps == 0 {
			t.Fatalf("%s: implausible outcome %+v", alg, resp)
		}
	}

	// Typed rejections.
	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "nope", Algorithm: "spillbound"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown workload: status %d: %s", rec.Code, body)
	}
	rec, _ = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "wat"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: status %d", rec.Code)
	}
	rec, _ = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 9999})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-grid qa: status %d", rec.Code)
	}
}

func TestMSOEndpoint(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	rec, body := postJSON(t, s.Handler(), "/mso",
		MSORequest{Workload: "EQ", Algorithm: "spillbound", Stride: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp MSOResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MSO < 1 || resp.MSO > resp.Guarantee || resp.Points == 0 {
		t.Fatalf("implausible MSO result %+v", resp)
	}
}

func TestAdmissionQueueSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	s := newTestServer(t, cfg)

	// Occupy the only slot out-of-band, then fill the queue: the next
	// admit must shed, deterministically.
	s.sem <- struct{}{}
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	entered := make(chan struct{})
	go func() {
		close(entered)
		release, shed, err := s.admit(queuedCtx)
		if release != nil {
			release()
		}
		_ = shed
		_ = err
	}()
	<-entered
	// Wait until the goroutine is counted as queued.
	for i := 0; s.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.queued.Load() != 1 {
		t.Fatalf("queued %d, want 1", s.queued.Load())
	}
	release, shed, err := s.admit(context.Background())
	if release != nil || !shed || err != nil {
		t.Fatalf("full queue must shed (release=%v shed=%v err=%v)", release != nil, shed, err)
	}

	// The HTTP surface translates the shed into 429 + Retry-After.
	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 1})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status %d: %s", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != KindShed {
		t.Fatalf("shed response untyped: %s", body)
	}
	cancelQueued()
	<-s.sem // release the out-of-band slot
}

func TestDeadlineReturnsPartialOutcome(t *testing.T) {
	cfg := testConfig(t)
	cfg.ExecLatency = 20 * time.Millisecond
	s := newTestServer(t, cfg)

	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "spillbound", QA: 5, TimeoutMS: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Aborted == "" {
		t.Fatalf("504 must carry the abort cause: %s", body)
	}
	if resp.Completed {
		t.Fatal("aborted run cannot be completed")
	}
	found := false
	for _, d := range resp.Degradations {
		if d.Kind == "exec-abandoned" {
			found = true
		}
		if d.Kind == "lost-observation" {
			t.Fatalf("deadline abort misrecorded as lost-observation: %s", body)
		}
	}
	if !found {
		t.Fatalf("partial outcome missing exec-abandoned degradation: %s", body)
	}
}

func TestBreakerTripsAndRecoversOverHTTP(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	cfg := testConfig(t)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 10 * time.Second
	cfg.Now = clk.Now
	cfg.AllowRequestFaults = true
	s := newTestServer(t, cfg)

	// With request faults explicitly allowed, fault_rate=1 makes
	// SiteServeRun fire on every request: three consecutive engine
	// faults trip the EQ circuit.
	for i := 0; i < 3; i++ {
		rec, body := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 2,
				FaultSeed: uint64(i), FaultRate: 1})
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("fault %d: status %d: %s", i, rec.Code, body)
		}
	}
	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 2})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Kind != KindBreakerOpen {
		t.Fatalf("open circuit response untyped: %s", body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("open circuit missing Retry-After")
	}

	// Cooldown passes: the half-open probe (fault-free) succeeds and
	// closes the circuit.
	clk.Advance(11 * time.Second)
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("probe: status %d: %s", rec.Code, body)
	}
	if st := s.workloads["EQ"].breaker.State(); st != "closed" {
		t.Fatalf("after successful probe: breaker %s", st)
	}
}

// A server started without chaos armed must ignore client-supplied
// fault_rate: otherwise any unauthenticated client could inject faults
// and trip the shared breaker, denying service to everyone.
func TestDisarmedServerIgnoresRequestFaults(t *testing.T) {
	cfg := testConfig(t)
	cfg.BreakerThreshold = 2
	s := newTestServer(t, cfg)

	for i := 0; i < 3; i++ {
		rec, body := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 2,
				FaultSeed: uint64(i), FaultRate: 1})
		if rec.Code != http.StatusOK {
			t.Fatalf("disarmed server honored fault_rate: status %d: %s", rec.Code, body)
		}
	}
	if st := s.workloads["EQ"].breaker.State(); st != "closed" {
		t.Fatalf("breaker %s after client-supplied faults on disarmed server", st)
	}
}

// A negative stride must be a typed 400, not an infinite enumeration
// loop inside mso.Sweep.
func TestMSORejectsNegativeStrideAndWorkers(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	for _, req := range []MSORequest{
		{Workload: "EQ", Algorithm: "sb", Stride: -1},
		{Workload: "EQ", Algorithm: "sb", Workers: -4},
	} {
		rec, body := postJSON(t, s.Handler(), "/mso", req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400: %s", req, rec.Code, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Kind != KindBadRequest {
			t.Fatalf("%+v: rejection untyped: %s", req, body)
		}
	}
}

// A snapshot persisted at one resolution must not be served after the
// operator changes -res: the mismatch is a miss that triggers a rebuild
// at the configured resolution.
func TestSnapshotResolutionMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.SnapshotDir = dir

	s1 := newTestServer(t, cfg)
	if got := s1.workloads["EQ"].compiled.Space.Grid.Res; got != cfg.Res {
		t.Fatalf("first boot res %d, want %d", got, cfg.Res)
	}

	cfg.Res = 5 // operator reconfigures the grid
	s2 := newTestServer(t, cfg)
	ws := s2.workloads["EQ"]
	ws.mu.RLock()
	warm, quarantined := ws.warmLoaded, ws.quarantined
	ws.mu.RUnlock()
	if warm {
		t.Fatal("stale-resolution snapshot must not warm-load")
	}
	if quarantined != "" {
		t.Fatal("resolution mismatch is a config change, not corruption; no quarantine expected")
	}
	if got := ws.compiled.Space.Grid.Res; got != 5 {
		t.Fatalf("rebuild served res %d, want 5", got)
	}
	// The rebuild overwrote the snapshot at the new resolution: the next
	// boot warm-loads it.
	s3 := newTestServer(t, cfg)
	if !s3.workloads["EQ"].warmLoaded {
		t.Fatal("rebuilt snapshot should warm-load at the new resolution")
	}
	if got := s3.workloads["EQ"].compiled.Space.Grid.Res; got != 5 {
		t.Fatalf("warm-loaded res %d, want 5", got)
	}
}

func TestSnapshotWarmLoadAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	cfg.SnapshotDir = dir
	snap := filepath.Join(dir, "EQ.snap")

	// First boot: cold build, snapshot persisted.
	s1 := newTestServer(t, cfg)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("first boot did not persist a snapshot: %v", err)
	}
	if s1.workloads["EQ"].warmLoaded {
		t.Fatal("first boot cannot be warm")
	}

	// Second boot: warm load.
	s2 := newTestServer(t, cfg)
	if !s2.workloads["EQ"].warmLoaded {
		t.Fatal("second boot should warm-load the snapshot")
	}

	// Corrupt the snapshot: third boot quarantines it, rebuilds, and
	// persists a fresh one.
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newTestServer(t, cfg)
	ws := s3.workloads["EQ"]
	ws.mu.RLock()
	quarantined, warm := ws.quarantined, ws.warmLoaded
	ws.mu.RUnlock()
	if warm {
		t.Fatal("corrupt snapshot must not warm-load")
	}
	if quarantined == "" {
		t.Fatal("corrupt snapshot was not quarantined")
	}
	if _, err := os.Stat(quarantined); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if ws.status() != "ready" {
		t.Fatalf("rebuild after quarantine: status %s", ws.status())
	}
	// The rebuilt snapshot must be loadable again.
	s4 := newTestServer(t, cfg)
	if !s4.workloads["EQ"].warmLoaded {
		t.Fatal("rebuilt snapshot should warm-load on the next boot")
	}
}

func TestGracefulDrain(t *testing.T) {
	cfg := testConfig(t)
	cfg.ExecLatency = 5 * time.Millisecond
	cfg.DrainTimeout = 5 * time.Second
	s := newTestServer(t, cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	// Launch an in-flight discovery, then trigger the drain mid-flight.
	type result struct {
		code int
		body []byte
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		raw, _ := json.Marshal(DiscoverRequest{Workload: "EQ", Algorithm: "spillbound", QA: 3})
		resp, err := http.Post(base+"/discover", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{code: resp.StatusCode, body: buf.Bytes()}
	}()
	time.Sleep(20 * time.Millisecond) // let the request get in flight
	cancel()

	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", res.code, res.body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(res.body, &resp); err != nil || !resp.Completed {
		t.Fatalf("in-flight request returned a broken outcome: %s", res.body)
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not finish within the timeout")
	}
	if !s.Draining() {
		t.Fatal("server should report draining after shutdown")
	}
	// New connections are refused after drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("post-drain connection should be refused")
	}
}

func TestPprofHandler(t *testing.T) {
	h := PprofHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("goroutine")) {
		t.Fatalf("pprof index missing profile listing: %.200s", rec.Body.String())
	}
	// The service mux must NOT expose the profiling endpoints.
	s := newTestServer(t, Config{Workloads: []string{"EQ"}, Scale: 0.05})
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Fatal("service mux should not serve /debug/pprof/")
	}
}

// The exec_workers knob: negative values are typed 400s, over-asking is
// clamped to the configured cap (a preference, like timeouts), and the
// reservation gauge pair is exported on /metrics.
func TestDiscoverExecWorkers(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxExecWorkers = 4
	s := newTestServer(t, cfg)

	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 7, ExecWorkers: -1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative exec_workers: status %d: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != KindBadRequest || !strings.Contains(er.Error, "exec_workers") {
		t.Fatalf("negative exec_workers error %+v", er)
	}

	// Over the cap: clamped, not rejected — the discovery still runs.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "EQ", Algorithm: "sb", QA: 7, ExecWorkers: 999})
	if rec.Code != http.StatusOK {
		t.Fatalf("clamped exec_workers: status %d: %s", rec.Code, body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Completed {
		t.Fatalf("clamped exec_workers run did not complete: %+v", resp)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metricsBody := rec.Body.String()
	for _, want := range []string{
		"# TYPE rqp_exec_workers gauge",
		"rqp_exec_workers 0", // nothing in flight after the requests drained
		"rqp_exec_workers_max 4",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, metricsBody)
		}
	}
}

// Config.MaxExecWorkers defaults to 8 and is hard-capped by the
// engine's MaxWorkers.
func TestMaxExecWorkersDefaults(t *testing.T) {
	if got := (Config{}).withDefaults().MaxExecWorkers; got != 8 {
		t.Fatalf("default MaxExecWorkers = %d, want 8", got)
	}
	if got := (Config{MaxExecWorkers: 10000}).withDefaults().MaxExecWorkers; got != exec.MaxWorkers {
		t.Fatalf("huge MaxExecWorkers = %d, want engine cap %d", got, exec.MaxWorkers)
	}
}

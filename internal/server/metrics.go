package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
)

// metrics holds the server's observability counters, exposed on GET
// /metrics in the Prometheus text exposition format with no external
// dependencies. The substrate already tracks every number: admission
// queue depth, in-flight discovery work, per-workload breaker state,
// and per-strategy request counts (the counter map is prebuilt from the
// strategy registry at startup, so recording is a lock-free add).
type metrics struct {
	inflight atomic.Int64
	// execWorkers sums the intra-query exec-worker reservations of
	// discoveries currently executing: each in-flight discovery holds its
	// clamped exec_workers count for the duration of the run. The gauge
	// is an operator's view of how much engine parallelism the service
	// has promised at this instant.
	execWorkers atomic.Int64
	// byStrategy counts discovery/MSO requests per routed strategy.
	// Requests that fail validation before routing are not counted.
	byStrategy map[string]*atomic.Int64
	// refineObs counts spill-step selectivity observations fed back into
	// lazy surfaces; refinedPoints counts point values those refinements
	// actually changed. Both stay zero in eager mode.
	refineObs     atomic.Int64
	refinedPoints atomic.Int64

	// compiles counts completed on-demand artifact compiles;
	// coalesceWaits counts requests that joined an in-flight compile
	// instead of starting one (the herd savings); leaderFaults counts
	// injected coalesce-leader faults; chaosEvicts counts injected
	// cache evictions. forwards/failovers are the shard-out proxy's
	// request accounting.
	compiles      atomic.Int64
	coalesceWaits atomic.Int64
	leaderFaults  atomic.Int64
	chaosEvicts   atomic.Int64
	forwards      atomic.Int64
	failovers     atomic.Int64

	// encodeErrors counts response-encoding and response-write
	// failures that writeJSON previously discarded silently;
	// outcomeChaosEvicts counts injected outcome-cache evictions (the
	// outcome.evict chaos site).
	encodeErrors       atomic.Int64
	outcomeChaosEvicts atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{byStrategy: make(map[string]*atomic.Int64)}
	for _, name := range core.Strategies() {
		m.byStrategy[name] = &atomic.Int64{}
	}
	return m
}

// countRequest records one request routed to the named strategy.
// Unknown names (impossible after registry validation) are dropped
// rather than grown, keeping the map read-only after construction —
// that is what makes the hot path lock-free.
func (m *metrics) countRequest(strategy string) {
	if c, ok := m.byStrategy[strategy]; ok {
		c.Add(1)
	}
}

// track brackets one in-flight request; call the returned func on exit.
func (m *metrics) track() func() {
	m.inflight.Add(1)
	return func() { m.inflight.Add(-1) }
}

// trackWorkers brackets one discovery's exec-worker reservation; call
// the returned func when the discovery finishes.
func (m *metrics) trackWorkers(n int) func() {
	m.execWorkers.Add(int64(n))
	return func() { m.execWorkers.Add(int64(-n)) }
}

// sanitizeLabel escapes a Prometheus label value per the text
// exposition format: backslash, double quote, and newline are the only
// characters with escape sequences, and everything else passes through
// verbatim. (Go's %q is close but not equal — it escapes tabs and
// non-printables with sequences the exposition format does not define,
// so a workload name with a tab would produce an unparseable series.)
func sanitizeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// breakerGauge maps breaker states onto a stable numeric encoding for
// the rqp_breaker_state gauge.
func breakerGauge(state string) int {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	default: // closed
		return 0
	}
}

// handleMetrics serves the Prometheus text format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintln(w, "# HELP rqp_queue_depth Requests waiting in the bounded admission queue.")
	fmt.Fprintln(w, "# TYPE rqp_queue_depth gauge")
	fmt.Fprintf(w, "rqp_queue_depth %d\n", s.queued.Load())

	fmt.Fprintln(w, "# HELP rqp_inflight Discovery and MSO requests currently executing.")
	fmt.Fprintln(w, "# TYPE rqp_inflight gauge")
	fmt.Fprintf(w, "rqp_inflight %d\n", s.metrics.inflight.Load())

	fmt.Fprintln(w, "# HELP rqp_exec_workers Intra-query exec workers reserved by in-flight discoveries.")
	fmt.Fprintln(w, "# TYPE rqp_exec_workers gauge")
	fmt.Fprintf(w, "rqp_exec_workers %d\n", s.metrics.execWorkers.Load())

	fmt.Fprintln(w, "# HELP rqp_exec_workers_max Per-request exec_workers cap (Config.MaxExecWorkers).")
	fmt.Fprintln(w, "# TYPE rqp_exec_workers_max gauge")
	fmt.Fprintf(w, "rqp_exec_workers_max %d\n", s.cfg.MaxExecWorkers)

	fmt.Fprintln(w, "# HELP rqp_breaker_state Circuit breaker state per workload (0=closed, 1=open, 2=half-open).")
	fmt.Fprintln(w, "# TYPE rqp_breaker_state gauge")
	states := s.snapshotWorkloads()
	for _, ws := range states {
		fmt.Fprintf(w, "rqp_breaker_state{workload=\"%s\"} %d\n",
			sanitizeLabel(ws.name), breakerGauge(ws.breaker.State()))
	}

	cs := s.cache.Stats()
	fmt.Fprintln(w, "# HELP rqp_cache_entries Artifacts resident in the signature-keyed compile cache.")
	fmt.Fprintln(w, "# TYPE rqp_cache_entries gauge")
	fmt.Fprintf(w, "rqp_cache_entries %d\n", cs.Entries)
	fmt.Fprintln(w, "# HELP rqp_cache_bytes Estimated bytes resident in the compile cache.")
	fmt.Fprintln(w, "# TYPE rqp_cache_bytes gauge")
	fmt.Fprintf(w, "rqp_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintln(w, "# HELP rqp_cache_budget_bytes Compile cache byte budget.")
	fmt.Fprintln(w, "# TYPE rqp_cache_budget_bytes gauge")
	fmt.Fprintf(w, "rqp_cache_budget_bytes %d\n", cs.Budget)
	fmt.Fprintln(w, "# HELP rqp_cache_hits_total Compile cache hits.")
	fmt.Fprintln(w, "# TYPE rqp_cache_hits_total counter")
	fmt.Fprintf(w, "rqp_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintln(w, "# HELP rqp_cache_misses_total Compile cache misses.")
	fmt.Fprintln(w, "# TYPE rqp_cache_misses_total counter")
	fmt.Fprintf(w, "rqp_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintln(w, "# HELP rqp_cache_evictions_total Compile cache evictions (budget pressure and injected).")
	fmt.Fprintln(w, "# TYPE rqp_cache_evictions_total counter")
	fmt.Fprintf(w, "rqp_cache_evictions_total %d\n", cs.Evictions)

	if s.outcomes != nil {
		os := s.outcomes.Stats()
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_entries Outcomes resident in the deterministic outcome cache.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_entries gauge")
		fmt.Fprintf(w, "rqp_outcome_cache_entries %d\n", os.Entries)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_bytes Estimated bytes resident in the outcome cache.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_bytes gauge")
		fmt.Fprintf(w, "rqp_outcome_cache_bytes %d\n", os.Bytes)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_budget_bytes Outcome cache byte budget.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_budget_bytes gauge")
		fmt.Fprintf(w, "rqp_outcome_cache_budget_bytes %d\n", os.Budget)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_hits_total Discover requests served from cached outcome bytes.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_hits_total counter")
		fmt.Fprintf(w, "rqp_outcome_cache_hits_total %d\n", os.Hits)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_misses_total Discover requests that executed because no cached outcome matched.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_misses_total counter")
		fmt.Fprintf(w, "rqp_outcome_cache_misses_total %d\n", os.Misses)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_evictions_total Outcome cache evictions (budget pressure, epoch churn, and injected).")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_evictions_total counter")
		fmt.Fprintf(w, "rqp_outcome_cache_evictions_total %d\n", os.Evictions)
		fmt.Fprintln(w, "# HELP rqp_outcome_cache_inserts_total Outcomes installed in the cache.")
		fmt.Fprintln(w, "# TYPE rqp_outcome_cache_inserts_total counter")
		fmt.Fprintf(w, "rqp_outcome_cache_inserts_total %d\n", os.Inserts)
		fmt.Fprintln(w, "# HELP rqp_outcome_chaos_evicts_total Injected outcome-cache evictions (outcome.evict site).")
		fmt.Fprintln(w, "# TYPE rqp_outcome_chaos_evicts_total counter")
		fmt.Fprintf(w, "rqp_outcome_chaos_evicts_total %d\n", s.metrics.outcomeChaosEvicts.Load())
	}

	fmt.Fprintln(w, "# HELP rqp_encode_errors_total Response encode/write failures (previously discarded silently).")
	fmt.Fprintln(w, "# TYPE rqp_encode_errors_total counter")
	fmt.Fprintf(w, "rqp_encode_errors_total %d\n", s.metrics.encodeErrors.Load())

	fmt.Fprintln(w, "# HELP rqp_compiles_total On-demand artifact compiles completed.")
	fmt.Fprintln(w, "# TYPE rqp_compiles_total counter")
	fmt.Fprintf(w, "rqp_compiles_total %d\n", s.metrics.compiles.Load())
	fmt.Fprintln(w, "# HELP rqp_coalesce_waits_total Requests that joined an in-flight compile instead of starting one.")
	fmt.Fprintln(w, "# TYPE rqp_coalesce_waits_total counter")
	fmt.Fprintf(w, "rqp_coalesce_waits_total %d\n", s.metrics.coalesceWaits.Load())
	fmt.Fprintln(w, "# HELP rqp_coalesce_leader_faults_total Injected compile-flight leader faults.")
	fmt.Fprintln(w, "# TYPE rqp_coalesce_leader_faults_total counter")
	fmt.Fprintf(w, "rqp_coalesce_leader_faults_total %d\n", s.metrics.leaderFaults.Load())

	if s.ring != nil {
		fmt.Fprintln(w, "# HELP rqp_peer_up Last known liveness per shard-out peer (1=up).")
		fmt.Fprintln(w, "# TYPE rqp_peer_up gauge")
		up := s.peers.snapshotUp(s.ring.peers)
		for _, peer := range s.ring.peers {
			v := 0
			if up[peer] {
				v = 1
			}
			fmt.Fprintf(w, "rqp_peer_up{peer=\"%s\"} %d\n", sanitizeLabel(peer), v)
		}
		fmt.Fprintln(w, "# HELP rqp_forwards_total Requests proxied to their signature's owner replica.")
		fmt.Fprintln(w, "# TYPE rqp_forwards_total counter")
		fmt.Fprintf(w, "rqp_forwards_total %d\n", s.metrics.forwards.Load())
		fmt.Fprintln(w, "# HELP rqp_failovers_total Owner replicas skipped as down during request routing.")
		fmt.Fprintln(w, "# TYPE rqp_failovers_total counter")
		fmt.Fprintf(w, "rqp_failovers_total %d\n", s.metrics.failovers.Load())
	}

	fmt.Fprintln(w, "# HELP rqp_refine_observations_total Spill selectivity observations fed into lazy ESS surfaces.")
	fmt.Fprintln(w, "# TYPE rqp_refine_observations_total counter")
	fmt.Fprintf(w, "rqp_refine_observations_total %d\n", s.metrics.refineObs.Load())

	fmt.Fprintln(w, "# HELP rqp_refined_points_total Lazy ESS point values changed by online refinement.")
	fmt.Fprintln(w, "# TYPE rqp_refined_points_total counter")
	fmt.Fprintf(w, "rqp_refined_points_total %d\n", s.metrics.refinedPoints.Load())

	// Demand-driven sources expose their work profile per workload; the
	// section is empty when every workload is eager.
	lazyHeader := false
	for _, ws := range states {
		ws.mu.RLock()
		lz := ws.lazy
		ws.mu.RUnlock()
		if lz == nil {
			continue
		}
		if !lazyHeader {
			lazyHeader = true
			fmt.Fprintln(w, "# HELP rqp_lazy_settled_points Grid points settled by the demand-driven ESS, per workload.")
			fmt.Fprintln(w, "# TYPE rqp_lazy_settled_points gauge")
		}
		name := sanitizeLabel(ws.name)
		prof := lz.Profile()
		fmt.Fprintf(w, "rqp_lazy_settled_points{workload=\"%s\"} %d\n", name, prof.Settled)
		fmt.Fprintf(w, "rqp_lazy_contour_hits_total{workload=\"%s\"} %d\n", name, prof.Hits)
		fmt.Fprintf(w, "rqp_lazy_contour_misses_total{workload=\"%s\"} %d\n", name, prof.Misses)
		fmt.Fprintf(w, "rqp_lazy_refinement_rounds_total{workload=\"%s\"} %d\n", name, prof.Refinements)
		fmt.Fprintf(w, "rqp_lazy_epoch{workload=\"%s\"} %d\n", name, prof.Epoch)
	}

	fmt.Fprintln(w, "# HELP rqp_requests_total Discovery and MSO requests routed, per strategy.")
	fmt.Fprintln(w, "# TYPE rqp_requests_total counter")
	names := make([]string, 0, len(s.metrics.byStrategy))
	for name := range s.metrics.byStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "rqp_requests_total{strategy=\"%s\"} %d\n",
			sanitizeLabel(name), s.metrics.byStrategy[name].Load())
	}
}

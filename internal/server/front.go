package server

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// The front table is the request-identity fast path in front of the
// outcome cache: it maps the *exact bytes* of a previously served
// /discover body to the fully resolved identity of that request — the
// workload state, strategy name, and outcome key — so a byte-identical
// repeat skips JSON decoding, workload resolution, and key derivation
// entirely. It caches parsing, never responses: every hit still goes
// through the outcome cache (which owns the byte budget, LRU, and
// chaos eviction), and the entry's epoch is re-stamped from the live
// workload state on every lookup, so lazy-ESS refinement invalidates
// front-path hits exactly as it invalidates slow-path ones.
//
// Only unarmed identities are admitted: an armed request must build
// its injector and roll the outcome.evict chaos site per arrival,
// which the fast path by design does not do.

// frontCap bounds the identity table. Entries are small (the request
// body plus a key), but the table is append-only between restarts, so
// it stops admitting — not serving — once full. Repeat-heavy working
// sets are far smaller; an adversarial all-unique stream just stops
// benefiting.
const frontCap = 8192

type frontEntry struct {
	body     []byte // exact request bytes; collision guard for the hash
	ws       *workloadState
	strategy string
	key      core.OutcomeKey // Epoch re-stamped on every lookup
}

type frontTable struct {
	m sync.Map // uint64 body hash -> *frontEntry
	n atomic.Int64
}

// hashBytes is FNV-1a over the raw body.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// get returns the identity learned for these exact bytes, or nil.
func (t *frontTable) get(body []byte) *frontEntry {
	v, ok := t.m.Load(hashBytes(body))
	if !ok {
		return nil
	}
	e := v.(*frontEntry)
	if !bytes.Equal(e.body, body) {
		return nil
	}
	return e
}

// put admits one identity unless the table is full or the slot is
// taken (first writer wins; a hash collision between distinct bodies
// just leaves the later one on the slow path).
func (t *frontTable) put(e *frontEntry) {
	if t.n.Load() >= frontCap {
		return
	}
	if _, loaded := t.m.LoadOrStore(hashBytes(e.body), e); !loaded {
		t.n.Add(1)
	}
}

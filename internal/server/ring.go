package server

import (
	"sort"
)

// hashRing is a consistent-hash ring over a static replica set. Each
// peer is projected onto the ring at ringVnodes pseudo-random points
// (virtual nodes smooth the key distribution across a handful of
// peers); a signature key is owned by the first vnode clockwise from
// the key's hash. Owners(key) returns every peer in that clockwise
// preference order — the failover sequence the proxy walks when the
// primary owner is down.
//
// The ring is a pure function of the sorted peer-URL set, so every
// replica configured with the same -peers list (in any order) builds
// the identical ring and routes every signature to the same owner —
// the property that makes shard-out caching coherent without any
// coordination traffic.
type hashRing struct {
	peers  []string // sorted, deduplicated
	vnodes []ringVnode
}

type ringVnode struct {
	hash uint64
	peer int // index into peers
}

const ringVnodesPerPeer = 64

func newHashRing(peers []string) *hashRing {
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p != "" && !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	r := &hashRing{peers: uniq}
	for pi, p := range uniq {
		base := fnvHash(p)
		for v := 0; v < ringVnodesPerPeer; v++ {
			r.vnodes = append(r.vnodes, ringVnode{
				hash: mix64(base ^ mix64(uint64(v))),
				peer: pi,
			})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.peer < b.peer // total order even on hash collisions
	})
	return r
}

// Owners returns all peers in preference order for the key: the
// clockwise successor owns it, the next distinct peers clockwise are
// the failover sequence.
func (r *hashRing) Owners(key uint64) []string {
	if len(r.peers) == 0 {
		return nil
	}
	h := mix64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, len(r.peers))
	seen := make(map[int]bool, len(r.peers))
	for i := 0; len(out) < len(r.peers); i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[vn.peer] {
			seen[vn.peer] = true
			out = append(out, r.peers[vn.peer])
		}
	}
	return out
}

// mix64 is the SplitMix64 finalizer: a cheap bijective hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnvHash folds a string into 64 bits (FNV-1a).
func fnvHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

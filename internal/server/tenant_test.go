package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/workload"
)

// tenantConfig is testConfig with room for a 16-strong herd: the
// admission queue must hold every member or shed turns a coalescing
// test into a retry test.
func tenantConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig(t)
	cfg.MaxConcurrent = 8
	cfg.MaxQueue = 64
	return cfg
}

// makeTenant materializes the named registered workload as an
// on-demand tenant state without serving a request.
func makeTenant(t *testing.T, s *Server, name string) *workloadState {
	t.Helper()
	rec := httptest.NewRecorder()
	req := DiscoverRequest{Workload: name}
	ws, ok := s.resolveWorkload(rec, &req)
	if !ok {
		t.Fatalf("resolveWorkload(%s): %s", name, rec.Body.String())
	}
	if !ws.onDemand {
		t.Fatalf("workload %s resolved as pinned", name)
	}
	return ws
}

// A workload outside the pinned set is admitted on demand: the first
// request compiles its artifact into the signature-keyed cache, the
// second is a pure cache hit, and /workloads reports the tenant as
// resident.
func TestOnDemandTenantCompilesOnceAndCaches(t *testing.T) {
	s := newTestServer(t, tenantConfig(t))
	for i := 0; i < 2; i++ {
		// Distinct grid points: identical requests would be absorbed by
		// the outcome cache before ever consulting the artifact cache,
		// which is the layer under test here.
		rec, body := postJSON(t, s.Handler(), "/discover",
			DiscoverRequest{Workload: "2D_Q91", Algorithm: "sb", QA: int32(3 + i)})
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, body)
		}
		var resp DiscoverResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Workload != "2D_Q91" || !resp.Completed {
			t.Fatalf("request %d: response %+v", i, resp)
		}
	}
	if got := s.CompileCount("2D_Q91"); got != 1 {
		t.Fatalf("compiles %d, want 1 (second request must hit the cache)", got)
	}
	if cs := s.CacheStats(); cs.Hits < 1 || cs.Entries != 1 {
		t.Fatalf("cache stats %+v, want >=1 hit and exactly 1 entry", cs)
	}

	rec, body := getBody(t, s.Handler(), "/workloads")
	if rec.Code != http.StatusOK {
		t.Fatalf("/workloads: %d", rec.Code)
	}
	if !strings.Contains(body, `"on-demand"`) || !strings.Contains(body, `"resident"`) {
		t.Fatalf("/workloads missing on-demand resident tenant:\n%s", body)
	}
}

// Requests may identify their workload by SQL text alone: the server
// canonicalizes, signs, and resolves against the registered specs. The
// Q91 dimensionality family shares one SQL body, so its signature is
// ambiguous until the workload field disambiguates.
func TestResolveWorkloadBySQL(t *testing.T) {
	s := newTestServer(t, tenantConfig(t))

	eq, err := workload.ByName("EQ")
	if err != nil {
		t.Fatal(err)
	}
	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{SQL: eq.SQL, Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("EQ by SQL: status %d: %s", rec.Code, body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "EQ" {
		t.Fatalf("EQ by SQL resolved to %q", resp.Workload)
	}

	q91, err := workload.ByName("2D_Q91")
	if err != nil {
		t.Fatal(err)
	}
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{SQL: q91.SQL, Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ambiguous SQL: status %d: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != KindBadRequest || !strings.Contains(er.Error, "2D_Q91") {
		t.Fatalf("ambiguous SQL error %+v must name the candidates", er)
	}

	// The workload field disambiguates the shared body.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{SQL: q91.SQL, Workload: "2D_Q91", Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("disambiguated SQL: status %d: %s", rec.Code, body)
	}

	// A mismatched workload/SQL pair is rejected, not silently served.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{SQL: q91.SQL, Workload: "EQ", Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched pair: status %d: %s", rec.Code, body)
	}

	// A signable query nobody registered is a 404.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{SQL: "select x from nowhere where y = 1", Algorithm: "sb"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown SQL: status %d: %s", rec.Code, body)
	}
}

// Satellite: a tripped breaker rejects a coalesced herd with 503
// exactly once each — the rejection happens before the compile path,
// so the herd costs zero compiles and zero cache traffic.
func TestTrippedBreakerRejectsCoalescedHerd(t *testing.T) {
	cfg := tenantConfig(t)
	cfg.BreakerThreshold = 1
	s := newTestServer(t, cfg)
	ws := makeTenant(t, s, "2D_Q91")
	ws.breaker.Report(false) // threshold 1: trips open
	if st := ws.breaker.State(); st != "open" {
		t.Fatalf("breaker state %s, want open", st)
	}

	const herd = 16
	codes := make([]int, herd)
	kinds := make([]string, herd)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec, body := postJSON(t, s.Handler(), "/discover",
				DiscoverRequest{Workload: "2D_Q91", Algorithm: "sb", QA: 3})
			codes[i] = rec.Code
			var er ErrorResponse
			json.Unmarshal(body, &er)
			kinds[i] = er.Kind
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusServiceUnavailable || kinds[i] != KindBreakerOpen {
			t.Fatalf("member %d: status %d kind %q, want one 503/%s each", i, codes[i], kinds[i], KindBreakerOpen)
		}
	}
	if got := s.CompileCount("2D_Q91"); got != 0 {
		t.Fatalf("tripped breaker allowed %d compiles, want 0", got)
	}
	if cs := s.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("tripped breaker touched the cache: %+v", cs)
	}
}

// Satellite: half-open recovery admits exactly one probe through the
// coalesced compile path. The probe pays the single compile; herd
// members racing it are rejected with 503 while it is in flight and
// served from the cache once it closes the breaker — either way, one
// compile total.
func TestHalfOpenAdmitsOneProbeThroughCompile(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	cfg := tenantConfig(t)
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Second
	cfg.Now = clk.Now
	s := newTestServer(t, cfg)
	ws := makeTenant(t, s, "2D_Q91")
	ws.breaker.Report(false)

	// Open breaker: typed 503 with a retry hint, before any compile.
	rec, body := postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "2D_Q91", Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d: %s", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != KindBreakerOpen || er.RetryAfterMS <= 0 {
		t.Fatalf("open breaker error %+v, want %s with retry hint", er, KindBreakerOpen)
	}

	clk.Advance(2 * time.Second) // cooldown elapsed: next Allow is the probe

	const herd = 16
	codes := make([]int, herd)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec, _ := postJSON(t, s.Handler(), "/discover",
				DiscoverRequest{Workload: "2D_Q91", Algorithm: "sb", QA: 3})
			codes[i] = rec.Code
		}(i)
	}
	close(start)
	wg.Wait()

	var oks, rejected int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			oks++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("member %d: unexpected status %d", i, code)
		}
	}
	// Exactly one probe is admitted while half-open; members arriving
	// after the probe closed the breaker are legitimate cache-hit 200s,
	// so the hard invariants are the compile count and the final state.
	if oks < 1 || oks+rejected != herd {
		t.Fatalf("herd outcome %d ok / %d rejected of %d", oks, rejected, herd)
	}
	if got := s.CompileCount("2D_Q91"); got != 1 {
		t.Fatalf("half-open herd paid %d compiles, want exactly 1 (the probe)", got)
	}
	if st := ws.breaker.State(); st != "closed" {
		t.Fatalf("breaker state %s after successful probe, want closed", st)
	}

	// Recovered: a follow-up request is a plain cache hit.
	rec, body = postJSON(t, s.Handler(), "/discover",
		DiscoverRequest{Workload: "2D_Q91", Algorithm: "sb", QA: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery: status %d: %s", rec.Code, body)
	}
	if got := s.CompileCount("2D_Q91"); got != 1 {
		t.Fatalf("post-recovery compile count %d, want still 1", got)
	}
}

// Chaos site cache.evict: an injected eviction makes the request see a
// miss and pay a fresh compile — and nothing worse.
func TestArtifactForChaosEvictRecompiles(t *testing.T) {
	s := newTestServer(t, tenantConfig(t))
	ws := makeTenant(t, s, "2D_Q91")
	ctx := context.Background()

	if _, err := s.artifactFor(ctx, ws, nil); err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(faultinject.Config{
		Seed:       11,
		Rates:      map[faultinject.Site]float64{faultinject.SiteCacheEvict: 1},
		MaxPerSite: 1,
	})
	if _, err := s.artifactFor(ctx, ws, in); err != nil {
		t.Fatal(err)
	}
	if got := s.CompileCount("2D_Q91"); got != 2 {
		t.Fatalf("compiles %d, want 2 (evict forces a rebuild)", got)
	}
	if cs := s.CacheStats(); cs.Evictions != 1 {
		t.Fatalf("cache stats %+v, want exactly 1 eviction", cs)
	}
	if got := s.metrics.chaosEvicts.Load(); got != 1 {
		t.Fatalf("chaos evict metric %d, want 1", got)
	}
}

// Chaos site coalesce.leader: a transient leader fault is retried with
// backoff and does not poison the flight — the caller still gets the
// artifact, at one successful compile.
func TestArtifactForLeaderFaultRetries(t *testing.T) {
	s := newTestServer(t, tenantConfig(t))
	ws := makeTenant(t, s, "2D_Q91")
	in := faultinject.New(faultinject.Config{
		Seed:       13,
		Rates:      map[faultinject.Site]float64{faultinject.SiteCoalesceLeader: 1},
		MaxPerSite: 1, // the fault clears on the first retry
	})
	art, err := s.artifactFor(context.Background(), ws, in)
	if err != nil || art == nil {
		t.Fatalf("artifactFor after transient leader fault: %v", err)
	}
	if got := s.CompileCount("2D_Q91"); got != 1 {
		t.Fatalf("compiles %d, want 1", got)
	}
	if got := s.metrics.leaderFaults.Load(); got != 1 {
		t.Fatalf("leader fault metric %d, want 1", got)
	}
}

// A persistent leader fault is not retried: retrying a deterministic
// failure only burns the attempt budget.
func TestArtifactForPersistentFaultFailsFast(t *testing.T) {
	s := newTestServer(t, tenantConfig(t))
	ws := makeTenant(t, s, "2D_Q91")
	in := faultinject.New(faultinject.Config{
		Seed:           17,
		Rates:          map[faultinject.Site]float64{faultinject.SiteCoalesceLeader: 1},
		PersistentFrac: 1,
	})
	if _, err := s.artifactFor(context.Background(), ws, in); err == nil {
		t.Fatal("persistent leader fault returned no error")
	} else if faultinject.IsTransient(err) {
		t.Fatalf("persistent fault classified transient: %v", err)
	}
	if got := s.CompileCount("2D_Q91"); got != 0 {
		t.Fatalf("compiles %d, want 0", got)
	}
}

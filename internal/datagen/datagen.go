package datagen

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Options configures data generation.
type Options struct {
	// Seed selects the deterministic data set; the same (catalog, seed)
	// pair always yields identical rows.
	Seed uint64
	// BuildIndexes controls whether PK hash indexes and FK hash/sorted
	// indexes are built after loading (the executor's index operators
	// require them).
	BuildIndexes bool
}

// Populate generates rows for every table in the catalog and loads them
// into a fresh store. Tables are generated in dependency order so that
// FK draws always land on existing keys.
func Populate(cat *catalog.Catalog, opts Options) (*storage.Store, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	store := storage.NewStore()
	order, err := topoOrder(cat)
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		rel, err := generateTable(cat, t, opts)
		if err != nil {
			return nil, err
		}
		store.Add(rel)
	}
	return store, nil
}

// topoOrder sorts tables so referenced tables precede referencing ones.
func topoOrder(cat *catalog.Catalog) ([]*catalog.Table, error) {
	tables := cat.Tables()
	state := make(map[string]int, len(tables)) // 0 new, 1 visiting, 2 done
	var out []*catalog.Table
	var visit func(t *catalog.Table) error
	visit = func(t *catalog.Table) error {
		switch state[t.Name] {
		case 1:
			return fmt.Errorf("datagen: FK cycle involving table %s", t.Name)
		case 2:
			return nil
		}
		state[t.Name] = 1
		for i := range t.Columns {
			ref := t.Columns[i].Ref
			if ref != "" && ref != t.Name {
				if err := visit(cat.MustTable(ref)); err != nil {
					return err
				}
			}
		}
		state[t.Name] = 2
		out = append(out, t)
		return nil
	}
	for _, t := range tables {
		if err := visit(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func generateTable(cat *catalog.Catalog, t *catalog.Table, opts Options) (*storage.Relation, error) {
	n := t.Rows(cat.Scale)
	cols := make([]string, len(t.Columns))
	for i := range t.Columns {
		cols[i] = t.Columns[i].Name
	}
	rel := storage.NewRelation(t.Name, cols)

	// One RNG stream per column keeps columns independent and stable
	// under schema evolution (adding a column doesn't reshuffle others).
	gens := make([]func(rowIdx int64) expr.Value, len(t.Columns))
	for i := range t.Columns {
		col := &t.Columns[i]
		rng := NewRNG(opts.Seed ^ hashString(t.Name) ^ (hashString(col.Name) << 1))
		g, err := columnGenerator(cat, t, col, rng)
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}

	for r := int64(0); r < n; r++ {
		row := make(expr.Row, len(t.Columns))
		for i := range gens {
			row[i] = gens[i](r)
		}
		rel.Append(row)
	}

	// Column vectors are part of the storage layout, not an opt-in
	// index: every generated relation gets them so the vectorized
	// engine's kernels run columnar by default.
	rel.BuildColumns()

	if opts.BuildIndexes {
		// PK hash + sorted index, FK hash indexes, plus sorted indexes on
		// every generated attribute so the optimizer can consider index
		// scans for filter predicates.
		rel.BuildHashIndex(0)
		rel.BuildSortedIndex(0)
		for i := range t.Columns {
			if i == 0 {
				continue
			}
			c := &t.Columns[i]
			if c.Ref != "" {
				rel.BuildHashIndex(i)
			}
			if c.Dist == catalog.Uniform || c.Dist == catalog.Zipf {
				rel.BuildSortedIndex(i)
				rel.BuildHashIndex(i)
			}
		}
	}
	return rel, nil
}

func columnGenerator(cat *catalog.Catalog, t *catalog.Table, col *catalog.Column, rng *RNG) (func(int64) expr.Value, error) {
	switch col.Dist {
	case catalog.Serial:
		return func(r int64) expr.Value { return expr.Int(r + 1) }, nil
	case catalog.Uniform:
		lo, hi := col.Min, col.Max
		return func(int64) expr.Value { return expr.Int(rng.IntRange(lo, hi)) }, nil
	case catalog.Zipf:
		span := col.Max - col.Min + 1
		z := NewZipf(rng, span, col.ZipfS)
		// Scatter ranks across the range so the hottest value isn't
		// always Min; the permutation is a fixed affine map.
		lo := col.Min
		return func(int64) expr.Value {
			rank := z.Next()
			v := lo + (rank*2654435761)%span
			return expr.Int(v)
		}, nil
	case catalog.FKUniform:
		refRows := cat.Rows(col.Ref)
		return func(int64) expr.Value { return expr.Int(rng.IntRange(1, refRows)) }, nil
	case catalog.FKZipf:
		refRows := cat.Rows(col.Ref)
		z := NewZipf(rng, refRows, col.ZipfS)
		return func(int64) expr.Value {
			rank := z.Next()
			return expr.Int(1 + (rank*2654435761)%refRows)
		}, nil
	default:
		return nil, fmt.Errorf("datagen: %s.%s has unknown distribution %d", t.Name, col.Name, col.Dist)
	}
}

// hashString is FNV-1a, inlined to keep datagen free of hash/fnv's
// interface overhead in per-column seeding.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

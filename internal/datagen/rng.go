// Package datagen deterministically generates synthetic rows for a
// catalog schema. It substitutes for the TPC-DS/IMDB data sets used by
// the paper: only relative cardinalities, key relationships, and value
// skew matter to the plan space, and all three are reproduced here.
package datagen

import "math"

// RNG is a splitmix64-seeded xorshift64* generator. It is deliberately
// not math/rand so that generated data is bit-stable across Go versions
// (the experiments in EXPERIMENTS.md depend on reproducible inputs).
type RNG struct{ state uint64 }

// NewRNG creates a generator from a seed; seed 0 is remapped.
func NewRNG(seed uint64) *RNG {
	// splitmix64 scramble so nearby seeds give unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &RNG{state: z}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n); n must be positive.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("datagen: Intn with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int64) int64 {
	if hi < lo {
		panic("datagen: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Zipf draws zipf-distributed ranks with parameter s over n values.
// Ranks are 0-based; rank 0 is the most frequent. The sampler inverts a
// precomputed CDF with binary search, so draws are O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n values with skew s (s > 1 typical;
// s = 0 selects the default 1.3).
func NewZipf(rng *RNG, n int64, s float64) *Zipf {
	if n <= 0 {
		panic("datagen: Zipf with non-positive n")
	}
	if s == 0 {
		s = 1.3
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next zipf rank in [0, n).
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

package datagen

import (
	"math"
	"testing"

	"repro/internal/catalog"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must still produce values")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(2)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("IntRange should cover all 4 values, saw %d", len(seen))
	}
	if r.IntRange(3, 3) != 3 {
		t.Error("degenerate range should return the single value")
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range should panic")
		}
	}()
	NewRNG(1).IntRange(5, 4)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(4)
	z := NewZipf(r, 100, 1.3)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the clear mode, and far above the uniform share.
	if counts[0] < draws/20 {
		t.Errorf("rank-0 count = %d, want heavy head", counts[0])
	}
	if counts[0] <= counts[50] {
		t.Error("zipf head should dominate mid ranks")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf with n<=0 should panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1.3)
}

func smallCatalog() *catalog.Catalog {
	c := catalog.New("small", 1)
	c.AddTable(&catalog.Table{Name: "dim", BaseRows: 50, Columns: []catalog.Column{
		{Name: "d_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "d_attr", Type: catalog.Int64, Dist: catalog.Uniform, Min: 1, Max: 5},
	}})
	c.AddTable(&catalog.Table{Name: "fact", BaseRows: 500, Columns: []catalog.Column{
		{Name: "f_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "f_dim", Type: catalog.Int64, Dist: catalog.FKZipf, Ref: "dim"},
		{Name: "f_val", Type: catalog.Int64, Dist: catalog.Zipf, Min: 1, Max: 100},
	}})
	return c
}

func TestPopulateCardinalities(t *testing.T) {
	st, err := Populate(smallCatalog(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.MustRelation("dim").NumRows(); got != 50 {
		t.Errorf("dim rows = %d, want 50", got)
	}
	if got := st.MustRelation("fact").NumRows(); got != 500 {
		t.Errorf("fact rows = %d, want 500", got)
	}
}

func TestPopulateSerialPK(t *testing.T) {
	st, err := Populate(smallCatalog(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	dim := st.MustRelation("dim")
	for i, row := range dim.Rows {
		if row[0].I != int64(i+1) {
			t.Fatalf("PK row %d = %d, want %d", i, row[0].I, i+1)
		}
	}
}

func TestPopulateFKIntegrity(t *testing.T) {
	st, err := Populate(smallCatalog(), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fact := st.MustRelation("fact")
	for _, row := range fact.Rows {
		fk := row[1].I
		if fk < 1 || fk > 50 {
			t.Fatalf("FK value %d outside dim key range", fk)
		}
	}
}

func TestPopulateDeterminism(t *testing.T) {
	a, _ := Populate(smallCatalog(), Options{Seed: 9})
	b, _ := Populate(smallCatalog(), Options{Seed: 9})
	ra, rb := a.MustRelation("fact"), b.MustRelation("fact")
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if ra.Rows[i][j] != rb.Rows[i][j] {
				t.Fatalf("row %d col %d differs across identical seeds", i, j)
			}
		}
	}
	c, _ := Populate(smallCatalog(), Options{Seed: 10})
	diff := false
	rc := c.MustRelation("fact")
	for i := range ra.Rows {
		if ra.Rows[i][1] != rc.Rows[i][1] || ra.Rows[i][2] != rc.Rows[i][2] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should change generated data")
	}
}

func TestPopulateBuildsIndexes(t *testing.T) {
	st, err := Populate(smallCatalog(), Options{Seed: 1, BuildIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	dim := st.MustRelation("dim")
	if !dim.HasHashIndex(0) || !dim.HasSortedIndex(0) {
		t.Error("PK indexes missing")
	}
	if !dim.HasSortedIndex(1) {
		t.Error("attribute sorted index missing")
	}
	fact := st.MustRelation("fact")
	if !fact.HasHashIndex(1) {
		t.Error("FK hash index missing")
	}
}

func TestPopulateUniformRange(t *testing.T) {
	st, _ := Populate(smallCatalog(), Options{Seed: 3})
	for _, row := range st.MustRelation("dim").Rows {
		if v := row[1].I; v < 1 || v > 5 {
			t.Fatalf("uniform value %d outside [1,5]", v)
		}
	}
}

func TestPopulateZipfSkewInFK(t *testing.T) {
	st, _ := Populate(smallCatalog(), Options{Seed: 5})
	counts := map[int64]int{}
	for _, row := range st.MustRelation("fact").Rows {
		counts[row[1].I]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// 500 draws over 50 keys: uniform share is 10; zipf head must be well above.
	if max < 30 {
		t.Errorf("FKZipf max key count = %d, want skewed head ≥ 30", max)
	}
}

func TestPopulateTPCDS(t *testing.T) {
	cat, err := catalog.TPCDS(0.01)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Populate(cat, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range cat.Tables() {
		rel := st.MustRelation(tab.Name)
		if int64(rel.NumRows()) != tab.Rows(0.01) {
			t.Errorf("%s rows = %d, want %d", tab.Name, rel.NumRows(), tab.Rows(0.01))
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	c := catalog.New("cyc", 1)
	c.AddTable(&catalog.Table{Name: "a", BaseRows: 1, Columns: []catalog.Column{
		{Name: "a_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "a_b", Type: catalog.Int64, Dist: catalog.FKUniform, Ref: "b"},
	}})
	c.AddTable(&catalog.Table{Name: "b", BaseRows: 1, Columns: []catalog.Column{
		{Name: "b_id", Type: catalog.Int64, Dist: catalog.Serial},
		{Name: "b_a", Type: catalog.Int64, Dist: catalog.FKUniform, Ref: "a"},
	}})
	if _, err := Populate(c, Options{}); err == nil {
		t.Fatal("FK cycle should be reported")
	}
}

// Package catalog defines schema metadata for the relational substrate:
// tables, columns, cardinalities, and key relationships. The catalog is
// the single source of truth consulted by the data generator, the
// statistics module, the optimizer, and the executor.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType enumerates the column types supported by the engine.
type ColType int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 ColType = iota
	// Float64 is a 64-bit floating point column.
	Float64
	// String is a variable-length string column.
	String
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Distribution describes how synthetic values for a column are drawn.
type Distribution int

const (
	// Serial assigns consecutive integers starting at 1 (primary keys).
	Serial Distribution = iota
	// Uniform draws uniformly from [Min, Max].
	Uniform
	// Zipf draws integers in [Min, Max] with a zipfian skew, so that a
	// few values are very frequent — the shape that makes selectivity
	// estimation hard in practice.
	Zipf
	// FKUniform draws a uniformly random key of the referenced table.
	FKUniform
	// FKZipf draws a zipf-skewed key of the referenced table.
	FKZipf
)

// Column describes one column of a table.
type Column struct {
	// Name is the column name, unique within its table.
	Name string
	// Type is the value type.
	Type ColType
	// Dist selects the generator distribution for synthetic data.
	Dist Distribution
	// Min and Max bound Uniform/Zipf integer draws (inclusive).
	Min, Max int64
	// Ref names the table referenced by a foreign key column; empty for
	// non-FK columns. FK columns always reference the primary key of Ref.
	Ref string
	// ZipfS is the zipf skew parameter (>1); 0 means the default 1.3.
	ZipfS float64
}

// Table describes one relation.
type Table struct {
	// Name is the table name, unique within the schema.
	Name string
	// Columns in declaration order; Columns[0] is the primary key and is
	// always a Serial Int64 column by convention of this engine.
	Columns []Column
	// BaseRows is the cardinality at scale factor 1.0.
	BaseRows int64
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// PrimaryKey returns the primary key column (Columns[0] by convention).
func (t *Table) PrimaryKey() *Column { return &t.Columns[0] }

// Rows returns the cardinality at the given scale factor, always ≥ 1.
func (t *Table) Rows(scale float64) int64 {
	n := int64(float64(t.BaseRows) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Catalog is a named collection of tables with a scale factor.
type Catalog struct {
	// Name identifies the schema (e.g. "tpcds", "imdb").
	Name string
	// Scale multiplies every table's BaseRows.
	Scale float64

	tables map[string]*Table
	order  []string
}

// New creates an empty catalog with the given name and scale factor.
func New(name string, scale float64) *Catalog {
	if scale <= 0 {
		scale = 1
	}
	return &Catalog{Name: name, Scale: scale, tables: make(map[string]*Table)}
}

// AddTable registers a table. It panics on duplicate names or malformed
// definitions, since schemas are static program data.
func (c *Catalog) AddTable(t *Table) {
	if t.Name == "" {
		panic("catalog: table with empty name")
	}
	if _, dup := c.tables[t.Name]; dup {
		panic("catalog: duplicate table " + t.Name)
	}
	if len(t.Columns) == 0 {
		panic("catalog: table " + t.Name + " has no columns")
	}
	if t.Columns[0].Dist != Serial || t.Columns[0].Type != Int64 {
		panic("catalog: table " + t.Name + " must start with a serial int64 primary key")
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		if seen[col.Name] {
			panic(fmt.Sprintf("catalog: duplicate column %s.%s", t.Name, col.Name))
		}
		seen[col.Name] = true
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t.Name)
}

// Table returns the named table, or nil if absent.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// MustTable returns the named table or panics; for static workloads.
func (c *Catalog) MustTable(name string) *Table {
	t := c.tables[name]
	if t == nil {
		panic("catalog: unknown table " + name)
	}
	return t
}

// Tables returns all tables in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

// Rows returns the scaled cardinality of the named table.
func (c *Catalog) Rows(table string) int64 {
	return c.MustTable(table).Rows(c.Scale)
}

// Validate checks referential integrity of all FK declarations and
// returns a descriptive error for the first violation found.
func (c *Catalog) Validate() error {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := c.tables[n]
		for i := range t.Columns {
			col := &t.Columns[i]
			isFK := col.Dist == FKUniform || col.Dist == FKZipf
			if isFK && col.Ref == "" {
				return fmt.Errorf("catalog: %s.%s is FK-distributed but has no Ref", n, col.Name)
			}
			if col.Ref != "" {
				if !isFK {
					return fmt.Errorf("catalog: %s.%s has Ref %q but a non-FK distribution", n, col.Name, col.Ref)
				}
				if c.tables[col.Ref] == nil {
					return fmt.Errorf("catalog: %s.%s references unknown table %q", n, col.Name, col.Ref)
				}
			}
			if (col.Dist == Uniform || col.Dist == Zipf) && col.Max < col.Min {
				return fmt.Errorf("catalog: %s.%s has Max < Min", n, col.Name)
			}
		}
	}
	return nil
}

// QualifiedColumn splits "table.column" into its parts.
func QualifiedColumn(s string) (table, column string, err error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("catalog: malformed qualified column %q", s)
	}
	return s[:i], s[i+1:], nil
}

package catalog

import "fmt"

// TPCDS returns a TPC-DS-like schema at the given scale factor. The
// table set covers every relation referenced by the paper's query suite
// (TPC-DS queries 7, 15, 18, 19, 26, 27, 29, 84, 91, 96). Base
// cardinalities follow the relative proportions of TPC-DS at scale
// factor 1 (≈1 GB), divided into "fact" tables (sales/returns, which
// scale) and small "dimension" tables. The absolute sizes are scaled
// down ~100x from the benchmark spec so that real-execution experiments
// run on a laptop; only relative sizes shape the plan space.
func TPCDS(scale float64) (*Catalog, error) {
	c := New("tpcds", scale)

	dim := func(name string, rows int64, extra ...Column) {
		cols := append([]Column{{Name: name + "_sk", Type: Int64, Dist: Serial}}, extra...)
		c.AddTable(&Table{Name: name, Columns: cols, BaseRows: rows})
	}

	// Dimension tables.
	dim("date_dim", 730,
		Column{Name: "d_year", Type: Int64, Dist: Uniform, Min: 1998, Max: 2002},
		Column{Name: "d_moy", Type: Int64, Dist: Uniform, Min: 1, Max: 12},
		Column{Name: "d_dom", Type: Int64, Dist: Uniform, Min: 1, Max: 28},
		Column{Name: "d_qoy", Type: Int64, Dist: Uniform, Min: 1, Max: 4},
	)
	dim("time_dim", 864,
		Column{Name: "t_hour", Type: Int64, Dist: Uniform, Min: 0, Max: 23},
		Column{Name: "t_minute", Type: Int64, Dist: Uniform, Min: 0, Max: 59},
	)
	dim("item", 1800,
		Column{Name: "i_category_id", Type: Int64, Dist: Zipf, Min: 1, Max: 10},
		Column{Name: "i_manufact_id", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
		Column{Name: "i_current_price", Type: Int64, Dist: Zipf, Min: 1, Max: 300},
	)
	dim("store", 12,
		Column{Name: "s_number_employees", Type: Int64, Dist: Uniform, Min: 200, Max: 300},
		Column{Name: "s_floor_space", Type: Int64, Dist: Uniform, Min: 5000000, Max: 10000000},
	)
	dim("call_center", 6,
		Column{Name: "cc_employees", Type: Int64, Dist: Uniform, Min: 1, Max: 7},
	)
	dim("warehouse", 5,
		Column{Name: "w_sq_ft", Type: Int64, Dist: Uniform, Min: 50000, Max: 1000000},
	)
	dim("promotion", 300,
		Column{Name: "p_channel_id", Type: Int64, Dist: Uniform, Min: 1, Max: 5},
	)
	dim("household_demographics", 720,
		Column{Name: "hd_income_band_sk", Type: Int64, Dist: FKUniform, Ref: "income_band"},
		Column{Name: "hd_dep_count", Type: Int64, Dist: Uniform, Min: 0, Max: 9},
		Column{Name: "hd_vehicle_count", Type: Int64, Dist: Uniform, Min: 0, Max: 4},
	)
	dim("customer_demographics", 19208,
		Column{Name: "cd_dep_count", Type: Int64, Dist: Uniform, Min: 0, Max: 6},
		Column{Name: "cd_purchase_estimate", Type: Int64, Dist: Zipf, Min: 500, Max: 10000},
	)
	dim("customer_address", 5000,
		Column{Name: "ca_gmt_offset", Type: Int64, Dist: Zipf, Min: -10, Max: -5},
		Column{Name: "ca_state_id", Type: Int64, Dist: Zipf, Min: 1, Max: 50},
	)

	// income_band must exist before household_demographics validates, but
	// Validate is deferred, so ordering here is cosmetic.
	dim("income_band", 20,
		Column{Name: "ib_lower_bound", Type: Int64, Dist: Uniform, Min: 0, Max: 190000},
	)

	c.AddTable(&Table{Name: "customer", BaseRows: 10000, Columns: []Column{
		{Name: "c_customer_sk", Type: Int64, Dist: Serial},
		{Name: "c_current_addr_sk", Type: Int64, Dist: FKZipf, Ref: "customer_address"},
		{Name: "c_current_cdemo_sk", Type: Int64, Dist: FKUniform, Ref: "customer_demographics"},
		{Name: "c_current_hdemo_sk", Type: Int64, Dist: FKUniform, Ref: "household_demographics"},
		{Name: "c_birth_year", Type: Int64, Dist: Uniform, Min: 1930, Max: 1995},
	}})

	fact := func(name, prefix string, rows int64, fks []Column, extra ...Column) {
		cols := []Column{{Name: prefix + "_sk", Type: Int64, Dist: Serial}}
		cols = append(cols, fks...)
		cols = append(cols, extra...)
		c.AddTable(&Table{Name: name, Columns: cols, BaseRows: rows})
	}

	// Fact tables. Relative sizes follow TPC-DS (store_sales largest).
	fact("store_sales", "ss", 288000, []Column{
		{Name: "ss_sold_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "ss_sold_time_sk", Type: Int64, Dist: FKUniform, Ref: "time_dim"},
		{Name: "ss_item_sk", Type: Int64, Dist: FKZipf, Ref: "item"},
		{Name: "ss_customer_sk", Type: Int64, Dist: FKZipf, Ref: "customer"},
		{Name: "ss_cdemo_sk", Type: Int64, Dist: FKUniform, Ref: "customer_demographics"},
		{Name: "ss_hdemo_sk", Type: Int64, Dist: FKUniform, Ref: "household_demographics"},
		{Name: "ss_addr_sk", Type: Int64, Dist: FKUniform, Ref: "customer_address"},
		{Name: "ss_store_sk", Type: Int64, Dist: FKZipf, Ref: "store"},
		{Name: "ss_promo_sk", Type: Int64, Dist: FKZipf, Ref: "promotion"},
	},
		Column{Name: "ss_quantity", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
		Column{Name: "ss_sales_price", Type: Int64, Dist: Zipf, Min: 1, Max: 200},
	)
	fact("store_returns", "sr", 28800, []Column{
		{Name: "sr_returned_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "sr_item_sk", Type: Int64, Dist: FKZipf, Ref: "item"},
		{Name: "sr_customer_sk", Type: Int64, Dist: FKZipf, Ref: "customer"},
		{Name: "sr_cdemo_sk", Type: Int64, Dist: FKUniform, Ref: "customer_demographics"},
		{Name: "sr_store_sk", Type: Int64, Dist: FKZipf, Ref: "store"},
	},
		Column{Name: "sr_return_quantity", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
	)
	fact("catalog_sales", "cs", 144000, []Column{
		{Name: "cs_sold_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "cs_ship_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "cs_bill_customer_sk", Type: Int64, Dist: FKZipf, Ref: "customer"},
		{Name: "cs_bill_cdemo_sk", Type: Int64, Dist: FKUniform, Ref: "customer_demographics"},
		{Name: "cs_item_sk", Type: Int64, Dist: FKZipf, Ref: "item"},
		{Name: "cs_promo_sk", Type: Int64, Dist: FKZipf, Ref: "promotion"},
		{Name: "cs_call_center_sk", Type: Int64, Dist: FKUniform, Ref: "call_center"},
		{Name: "cs_warehouse_sk", Type: Int64, Dist: FKUniform, Ref: "warehouse"},
	},
		Column{Name: "cs_quantity", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
		Column{Name: "cs_list_price", Type: Int64, Dist: Zipf, Min: 1, Max: 300},
	)
	fact("catalog_returns", "cr", 14400, []Column{
		{Name: "cr_returned_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "cr_returning_customer_sk", Type: Int64, Dist: FKZipf, Ref: "customer"},
		{Name: "cr_item_sk", Type: Int64, Dist: FKZipf, Ref: "item"},
		{Name: "cr_call_center_sk", Type: Int64, Dist: FKUniform, Ref: "call_center"},
	},
		Column{Name: "cr_return_quantity", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
	)
	fact("web_sales", "ws", 72000, []Column{
		{Name: "ws_sold_date_sk", Type: Int64, Dist: FKZipf, Ref: "date_dim"},
		{Name: "ws_item_sk", Type: Int64, Dist: FKZipf, Ref: "item"},
		{Name: "ws_bill_customer_sk", Type: Int64, Dist: FKZipf, Ref: "customer"},
		{Name: "ws_warehouse_sk", Type: Int64, Dist: FKUniform, Ref: "warehouse"},
		{Name: "ws_promo_sk", Type: Int64, Dist: FKZipf, Ref: "promotion"},
	},
		Column{Name: "ws_quantity", Type: Int64, Dist: Uniform, Min: 1, Max: 100},
	)

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("catalog: tpcds schema invalid: %w", err)
	}
	return c, nil
}

// IMDB returns a JOB-like (IMDB) schema sufficient for JOB query 1a,
// which joins company_type ⋈ movie_companies ⋈ title ⋈ movie_info_idx ⋈
// info_type. Cardinalities follow the real IMDB snapshot's relative
// proportions, scaled down ~1000x.
func IMDB(scale float64) (*Catalog, error) {
	c := New("imdb", scale)

	c.AddTable(&Table{Name: "company_type", BaseRows: 4, Columns: []Column{
		{Name: "ct_id", Type: Int64, Dist: Serial},
		{Name: "ct_kind", Type: Int64, Dist: Uniform, Min: 1, Max: 4},
	}})
	c.AddTable(&Table{Name: "info_type", BaseRows: 113, Columns: []Column{
		{Name: "it_id", Type: Int64, Dist: Serial},
		{Name: "it_info", Type: Int64, Dist: Uniform, Min: 1, Max: 113},
	}})
	c.AddTable(&Table{Name: "title", BaseRows: 2528, Columns: []Column{
		{Name: "t_id", Type: Int64, Dist: Serial},
		{Name: "t_production_year", Type: Int64, Dist: Zipf, Min: 1900, Max: 2013},
		{Name: "t_kind_id", Type: Int64, Dist: Zipf, Min: 1, Max: 7},
	}})
	c.AddTable(&Table{Name: "movie_companies", BaseRows: 2609, Columns: []Column{
		{Name: "mc_id", Type: Int64, Dist: Serial},
		{Name: "mc_movie_id", Type: Int64, Dist: FKZipf, Ref: "title"},
		{Name: "mc_company_type_id", Type: Int64, Dist: FKZipf, Ref: "company_type"},
		{Name: "mc_note_kind", Type: Int64, Dist: Zipf, Min: 1, Max: 20},
	}})
	c.AddTable(&Table{Name: "movie_info_idx", BaseRows: 1380, Columns: []Column{
		{Name: "mi_idx_id", Type: Int64, Dist: Serial},
		{Name: "mi_idx_movie_id", Type: Int64, Dist: FKZipf, Ref: "title"},
		{Name: "mi_idx_info_type_id", Type: Int64, Dist: FKZipf, Ref: "info_type"},
		{Name: "mi_idx_info", Type: Int64, Dist: Zipf, Min: 1, Max: 100},
	}})

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("catalog: imdb schema invalid: %w", err)
	}
	return c, nil
}

package catalog

import (
	"strings"
	"testing"
)

func TestColTypeString(t *testing.T) {
	cases := []struct {
		typ  ColType
		want string
	}{
		{Int64, "BIGINT"},
		{Float64, "DOUBLE"},
		{String, "VARCHAR"},
		{ColType(99), "ColType(99)"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("ColType(%d).String() = %q, want %q", int(c.typ), got, c.want)
		}
	}
}

func testTable(name string, extra ...Column) *Table {
	cols := append([]Column{{Name: name + "_id", Type: Int64, Dist: Serial}}, extra...)
	return &Table{Name: name, Columns: cols, BaseRows: 100}
}

func TestAddAndLookupTable(t *testing.T) {
	c := New("test", 1.0)
	c.AddTable(testTable("a"))
	c.AddTable(testTable("b"))

	if c.Table("a") == nil || c.Table("b") == nil {
		t.Fatal("registered tables not found")
	}
	if c.Table("zzz") != nil {
		t.Fatal("unknown table should be nil")
	}
	ts := c.Tables()
	if len(ts) != 2 || ts[0].Name != "a" || ts[1].Name != "b" {
		t.Fatalf("Tables() = %v, want registration order a,b", ts)
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable on unknown table should panic")
		}
	}()
	New("test", 1).MustTable("nope")
}

func TestAddTablePanicsOnDuplicate(t *testing.T) {
	c := New("test", 1)
	c.AddTable(testTable("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddTable should panic")
		}
	}()
	c.AddTable(testTable("a"))
}

func TestAddTablePanicsOnBadPK(t *testing.T) {
	c := New("test", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-serial first column should panic")
		}
	}()
	c.AddTable(&Table{Name: "bad", BaseRows: 1, Columns: []Column{
		{Name: "x", Type: Int64, Dist: Uniform, Min: 1, Max: 10},
	}})
}

func TestAddTablePanicsOnDuplicateColumn(t *testing.T) {
	c := New("test", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column should panic")
		}
	}()
	c.AddTable(&Table{Name: "bad", BaseRows: 1, Columns: []Column{
		{Name: "id", Type: Int64, Dist: Serial},
		{Name: "v", Type: Int64, Dist: Uniform, Min: 0, Max: 1},
		{Name: "v", Type: Int64, Dist: Uniform, Min: 0, Max: 1},
	}})
}

func TestScaling(t *testing.T) {
	c := New("test", 0.5)
	c.AddTable(testTable("a"))
	if got := c.Rows("a"); got != 50 {
		t.Errorf("Rows at scale 0.5 = %d, want 50", got)
	}
	// Scale never drops a table to zero rows.
	tiny := New("test", 1e-9)
	tiny.AddTable(testTable("a"))
	if got := tiny.Rows("a"); got != 1 {
		t.Errorf("Rows at tiny scale = %d, want 1", got)
	}
	// Non-positive scale defaults to 1.
	if New("x", -1).Scale != 1 {
		t.Error("negative scale should default to 1")
	}
}

func TestColumnLookup(t *testing.T) {
	tab := testTable("a", Column{Name: "v", Type: Int64, Dist: Uniform, Min: 0, Max: 9})
	if tab.ColumnIndex("v") != 1 {
		t.Errorf("ColumnIndex(v) = %d, want 1", tab.ColumnIndex("v"))
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex of missing column should be -1")
	}
	if tab.Column("v") == nil || tab.Column("nope") != nil {
		t.Error("Column lookup mismatch")
	}
	if tab.PrimaryKey().Name != "a_id" {
		t.Errorf("PrimaryKey = %s, want a_id", tab.PrimaryKey().Name)
	}
}

func TestValidateCatchesBadFK(t *testing.T) {
	c := New("test", 1)
	c.AddTable(testTable("a", Column{Name: "fk", Type: Int64, Dist: FKUniform, Ref: "missing"}))
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("Validate = %v, want unknown-table error", err)
	}
}

func TestValidateCatchesFKWithoutRef(t *testing.T) {
	c := New("test", 1)
	c.AddTable(testTable("a", Column{Name: "fk", Type: Int64, Dist: FKZipf}))
	if err := c.Validate(); err == nil {
		t.Fatal("Validate should reject FK dist without Ref")
	}
}

func TestValidateCatchesRefWithoutFKDist(t *testing.T) {
	c := New("test", 1)
	c.AddTable(testTable("a", Column{Name: "x", Type: Int64, Dist: Uniform, Ref: "a"}))
	if err := c.Validate(); err == nil {
		t.Fatal("Validate should reject Ref on non-FK distribution")
	}
}

func TestValidateCatchesInvertedRange(t *testing.T) {
	c := New("test", 1)
	c.AddTable(testTable("a", Column{Name: "x", Type: Int64, Dist: Uniform, Min: 10, Max: 5}))
	if err := c.Validate(); err == nil {
		t.Fatal("Validate should reject Max < Min")
	}
}

func TestQualifiedColumn(t *testing.T) {
	tab, col, err := QualifiedColumn("t.c")
	if err != nil || tab != "t" || col != "c" {
		t.Fatalf("QualifiedColumn(t.c) = %q,%q,%v", tab, col, err)
	}
	for _, bad := range []string{"noDot", ".x", "x.", ""} {
		if _, _, err := QualifiedColumn(bad); err == nil {
			t.Errorf("QualifiedColumn(%q) should fail", bad)
		}
	}
}

func TestTPCDSSchema(t *testing.T) {
	c, err := TPCDS(1.0)
	if err != nil {
		t.Fatalf("TPCDS catalog invalid: %v", err)
	}
	// Every table the paper's query suite mentions must exist.
	required := []string{
		"date_dim", "time_dim", "item", "store", "call_center", "promotion",
		"household_demographics", "customer_demographics", "customer_address",
		"customer", "income_band", "store_sales", "store_returns",
		"catalog_sales", "catalog_returns", "web_sales", "warehouse",
	}
	for _, name := range required {
		if c.Table(name) == nil {
			t.Errorf("TPCDS missing table %s", name)
		}
	}
	// Fact tables must dominate dimensions in size.
	if c.Rows("store_sales") <= c.Rows("customer") {
		t.Error("store_sales should be larger than customer")
	}
	if c.Rows("catalog_sales") <= c.Rows("date_dim") {
		t.Error("catalog_sales should be larger than date_dim")
	}
}

func TestIMDBSchema(t *testing.T) {
	c, err := IMDB(1.0)
	if err != nil {
		t.Fatalf("IMDB catalog invalid: %v", err)
	}
	for _, name := range []string{"company_type", "info_type", "title", "movie_companies", "movie_info_idx"} {
		if c.Table(name) == nil {
			t.Errorf("IMDB missing table %s", name)
		}
	}
}

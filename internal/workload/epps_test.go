package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

func TestSuggestEPPsFlagsSkewedAndAttrJoins(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	// ss_sold_time_sk is a *uniform* FK onto time_dim's PK → reliable.
	// ss_store_sk is FKZipf → error-prone.
	q, err := sqlparse.Parse("t", cat, `
SELECT * FROM store_sales ss, time_dim t, store s
WHERE ss.ss_sold_time_sk = t.time_dim_sk
  AND ss.ss_store_sk = s.store_sk`)
	if err != nil {
		t.Fatal(err)
	}
	epps := SuggestEPPs(q)
	if len(epps) != 1 || epps[0] != 1 {
		t.Fatalf("SuggestEPPs = %v, want just the skewed store join", epps)
	}
}

func TestSuggestEPPsAttrAttrJoin(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	// d_year vs c_birth_year is an attribute join: never reliable.
	q, err := sqlparse.Parse("t", cat, `
SELECT * FROM date_dim d, customer c
WHERE d.d_year = c.c_birth_year`)
	if err != nil {
		t.Fatal(err)
	}
	if epps := SuggestEPPs(q); len(epps) != 1 {
		t.Fatalf("attribute join must be flagged, got %v", epps)
	}
}

func TestSuggestEPPsReversedOrientation(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	// PK on the left, uniform FK on the right: still reliable.
	q, err := sqlparse.Parse("t", cat, `
SELECT * FROM time_dim t, store_sales ss
WHERE t.time_dim_sk = ss.ss_sold_time_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if epps := SuggestEPPs(q); len(epps) != 0 {
		t.Fatalf("reversed reliable join flagged: %v", epps)
	}
}

func TestMarkSuggestedEPPs(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("t", cat, `
SELECT * FROM store_sales ss, date_dim d, item i
WHERE ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_item_sk = i.item_sk`)
	if err != nil {
		t.Fatal(err)
	}
	got := MarkSuggestedEPPs(q)
	// Both FKs are zipf-skewed → both error-prone.
	if len(got) != 2 || q.D() != 2 {
		t.Fatalf("MarkSuggestedEPPs = %v, D = %d", got, q.D())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSuggestedEPPsOnSuite(t *testing.T) {
	// The heuristic certifies only uniform FK→PK lookups; the paper's
	// declared epp sets are experiment choices and may include joins the
	// heuristic would certify. Check that on every suite query the
	// heuristic flags a non-empty, valid subset of the joins, and that
	// every *skewed* declared epp is caught.
	for _, spec := range Suite() {
		q, err := spec.Load(1)
		if err != nil {
			t.Fatal(err)
		}
		flagged := map[int]bool{}
		for _, id := range SuggestEPPs(q) {
			if id < 0 || id >= len(q.Joins) {
				t.Fatalf("%s: flagged join %d out of range", spec.Name, id)
			}
			flagged[id] = true
		}
		if len(flagged) == 0 {
			t.Errorf("%s: heuristic flagged nothing", spec.Name)
		}
		for _, id := range q.EPPs {
			j := q.Joins[id]
			lt := q.Cat.MustTable(q.Relations[j.LeftRel].Table)
			rt := q.Cat.MustTable(q.Relations[j.RightRel].Table)
			lc, rc := lt.Column(j.LeftCol), rt.Column(j.RightCol)
			skewed := lc.Dist == catalog.FKZipf || rc.Dist == catalog.FKZipf ||
				lc.Dist == catalog.Zipf || rc.Dist == catalog.Zipf
			if skewed && !flagged[id] {
				t.Errorf("%s: skewed epp join %d not flagged", spec.Name, id)
			}
		}
	}
}

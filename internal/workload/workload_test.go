package workload

import (
	"testing"
)

func TestSuiteLoadsAndValidates(t *testing.T) {
	specs := Suite()
	if len(specs) != 11 {
		t.Fatalf("suite has %d queries, want 11 (paper's Fig. 8 set)", len(specs))
	}
	for _, spec := range specs {
		q, err := spec.Load(1.0)
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if q.D() != spec.D {
			t.Errorf("%s: D=%d, want %d", spec.Name, q.D(), spec.D)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestSuiteDimensionalities(t *testing.T) {
	want := map[string]int{
		"3D_Q15": 3, "3D_Q96": 3,
		"4D_Q7": 4, "4D_Q26": 4, "4D_Q27": 4, "4D_Q91": 4,
		"5D_Q19": 5, "5D_Q29": 5, "5D_Q84": 5,
		"6D_Q18": 6, "6D_Q91": 6,
	}
	for _, spec := range Suite() {
		if want[spec.Name] != spec.D {
			t.Errorf("%s: D=%d, want %d", spec.Name, spec.D, want[spec.Name])
		}
		delete(want, spec.Name)
	}
	if len(want) != 0 {
		t.Errorf("suite missing queries: %v", want)
	}
}

func TestQ91Family(t *testing.T) {
	fam := Q91Family()
	if len(fam) != 5 {
		t.Fatalf("family size %d, want 5 (2D..6D)", len(fam))
	}
	for i, spec := range fam {
		if spec.D != i+2 {
			t.Errorf("family[%d].D = %d, want %d", i, spec.D, i+2)
		}
		q, err := spec.Load(1.0)
		if err != nil {
			t.Fatal(err)
		}
		// All family members share the 7-relation Q91 body.
		if len(q.Relations) != 7 {
			t.Errorf("%s: %d relations, want 7", spec.Name, len(q.Relations))
		}
		if len(q.Joins) != 6 {
			t.Errorf("%s: %d joins, want 6", spec.Name, len(q.Joins))
		}
	}
	// Lower-D members' epps are prefixes of higher-D members'.
	q2, _ := fam[0].Load(1)
	q6, _ := fam[4].Load(1)
	for i, e := range q2.EPPs {
		if q6.EPPs[i] != e {
			t.Error("Q91 family epp ordering must nest")
		}
	}
}

func TestEQAndJOB(t *testing.T) {
	for _, spec := range []Spec{EQ(), JOBQ1a()} {
		q, err := spec.Load(1.0)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if q.D() != spec.D {
			t.Errorf("%s: D mismatch", spec.Name)
		}
	}
	if JOBQ1a().Schema != "imdb" {
		t.Error("JOB must run on the IMDB schema")
	}
}

func TestByName(t *testing.T) {
	spec, err := ByName("4D_Q91")
	if err != nil || spec.D != 4 {
		t.Fatalf("ByName(4D_Q91) = %+v, %v", spec, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
	names := Names()
	if len(names) < 14 {
		t.Errorf("Names() = %d entries, want ≥ 14", len(names))
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
}

func TestLoadBadSchema(t *testing.T) {
	s := EQ()
	s.Schema = "zzz"
	if _, err := s.Load(1); err == nil {
		t.Fatal("unknown schema should error")
	}
}

func TestLoadDMismatch(t *testing.T) {
	s := EQ()
	s.D = 3
	if _, err := s.Load(1); err == nil {
		t.Fatal("declared-D mismatch should error")
	}
}

func TestSpaceSmokeEQ(t *testing.T) {
	s, err := EQ().Space(1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid.D != 2 || s.Grid.Res != 6 {
		t.Fatalf("space grid %dx%d", s.Grid.D, s.Grid.Res)
	}
	if len(s.Contours) < 2 {
		t.Error("EQ space should have multiple contours")
	}
}

func TestSpaceDefaultResolution(t *testing.T) {
	spec := EQ()
	s, err := spec.Space(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid.Res != spec.Res {
		t.Fatalf("default res %d, want %d", s.Grid.Res, spec.Res)
	}
}

// Every suite query must produce a non-degenerate plan diagram: more
// than one POSP plan, and plans spilling on every dimension somewhere.
func TestSuiteSpacesAreInteresting(t *testing.T) {
	if testing.Short() {
		t.Skip("space sweeps in short mode")
	}
	for _, spec := range Suite() {
		if spec.D > 4 {
			continue // keep test runtime modest; 5D/6D covered by benches
		}
		s, err := spec.Space(1.0, 5)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if s.NumPlans() < 2 {
			t.Errorf("%s: degenerate POSP (%d plans)", spec.Name, s.NumPlans())
		}
	}
}

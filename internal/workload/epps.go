package workload

import (
	"repro/internal/catalog"
	"repro/internal/query"
)

// SuggestEPPs implements the conservative epp-identification heuristic
// of the paper's deployment discussion (§7): a join predicate is
// flagged error-prone unless its selectivity is reliably estimable.
// With this engine's statistics, the reliable case is a textbook
// uniform foreign-key lookup — one side a serial primary key, the other
// a uniformly-distributed FK column referencing that key — where the
// 1/N estimate is exact. Everything else (skewed FKs, attribute-to-
// attribute joins, cross-referencing keys) is flagged.
func SuggestEPPs(q *query.Query) []int {
	var out []int
	for _, j := range q.Joins {
		if !reliableJoin(q, j) {
			out = append(out, j.ID)
		}
	}
	return out
}

func reliableJoin(q *query.Query, j query.Join) bool {
	lt := q.Cat.MustTable(q.Relations[j.LeftRel].Table)
	rt := q.Cat.MustTable(q.Relations[j.RightRel].Table)
	lc, rc := lt.Column(j.LeftCol), rt.Column(j.RightCol)
	if lc == nil || rc == nil {
		return false
	}
	return uniformFKOntoPK(lc, rc, rt) || uniformFKOntoPK(rc, lc, lt)
}

// uniformFKOntoPK reports whether fk is a uniformly distributed foreign
// key referencing exactly the primary key pk of table pkTable.
func uniformFKOntoPK(fk, pk *catalog.Column, pkTable *catalog.Table) bool {
	if fk.Dist != catalog.FKUniform {
		return false
	}
	if pk.Dist != catalog.Serial {
		return false
	}
	return fk.Ref == pkTable.Name && pkTable.PrimaryKey() == pk
}

// MarkSuggestedEPPs applies SuggestEPPs to the query, setting its EPP
// list in join order, and returns the chosen join IDs.
func MarkSuggestedEPPs(q *query.Query) []int {
	epps := SuggestEPPs(q)
	q.EPPs = append([]int(nil), epps...)
	return epps
}

// Package workload defines the paper's evaluation query suite: the
// TPC-DS SPJ queries of §6.1 (named xD_Qz: x epps, TPC-DS query z), the
// Q91 dimensionality family of Fig. 9, the running example EQ, and JOB
// query 1a of §6.5. Each query mirrors the join-graph geometry (chain /
// star / branch) and epp count of the paper's instance; filters are
// chosen to keep dimension tables selective the way the originals do.
package workload

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Spec declares one benchmark query.
type Spec struct {
	// Name is the paper's identifier, e.g. "4D_Q91".
	Name string
	// D is the number of error-prone predicates.
	D int
	// Schema selects the catalog: "tpcds" or "imdb".
	Schema string
	// SQL is the SPJ statement.
	SQL string
	// EPPs are the error-prone joins as qualified column pairs, in ESS
	// dimension order.
	EPPs [][2]string
	// Res is the default per-dimension grid resolution used by the
	// experiment harness (sized so D-dimensional sweeps stay tractable).
	Res int
}

// Load binds the spec against a fresh catalog at the given scale and
// returns the validated query.
func (s Spec) Load(scale float64) (*query.Query, error) {
	var (
		cat *catalog.Catalog
		err error
	)
	switch s.Schema {
	case "tpcds":
		cat, err = catalog.TPCDS(scale)
	case "imdb":
		cat, err = catalog.IMDB(scale)
	default:
		return nil, fmt.Errorf("workload: unknown schema %q", s.Schema)
	}
	if err != nil {
		return nil, err
	}
	q, err := sqlparse.Parse(s.Name, cat, s.SQL)
	if err != nil {
		return nil, err
	}
	for _, e := range s.EPPs {
		if err := sqlparse.MarkEPP(q, e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if q.D() != s.D {
		return nil, fmt.Errorf("workload: %s declares D=%d but marked %d epps", s.Name, s.D, q.D())
	}
	return q, nil
}

// Space builds the ESS search space for the spec with analytic
// statistics, default cost parameters, and the spec's resolution
// (overridable via res > 0).
func (s Spec) Space(scale float64, res int) (*ess.Space, error) {
	return s.SpaceWith(scale, ess.Config{Res: res})
}

// SpaceWith is Space with full control over the ESS build configuration
// (sweep mode, θ, coarse stride, workers). A non-positive Res falls back
// to the spec's default resolution.
func (s Spec) SpaceWith(scale float64, cfg ess.Config) (*ess.Space, error) {
	q, err := s.Load(scale)
	if err != nil {
		return nil, err
	}
	if cfg.Res <= 0 {
		cfg.Res = s.Res
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	return ess.Build(q, env, cost.NewModel(cost.DefaultParams()), cfg)
}

// LazySpaceWith builds the demand-driven ESS source for the spec: only
// the grid corners are optimized up front, everything else settles as
// discovery touches it. Configuration mirrors SpaceWith.
func (s Spec) LazySpaceWith(scale float64, cfg ess.Config) (*ess.LazySpace, error) {
	q, err := s.Load(scale)
	if err != nil {
		return nil, err
	}
	if cfg.Res <= 0 {
		cfg.Res = s.Res
	}
	env := optimizer.BuildEnv(q, stats.FromCatalog(q.Cat))
	return ess.BuildLazy(q, env, cost.NewModel(cost.DefaultParams()), cfg)
}

// q91SQL is the shared 7-relation Q91 body (call-center returns join).
const q91SQL = `
SELECT *
FROM catalog_returns cr, call_center cc, date_dim d, customer c,
     customer_address ca, customer_demographics cd, household_demographics hd
WHERE cr.cr_call_center_sk = cc.call_center_sk
  AND cr.cr_returned_date_sk = d.date_dim_sk
  AND cr.cr_returning_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.customer_address_sk
  AND c.c_current_cdemo_sk = cd.customer_demographics_sk
  AND c.c_current_hdemo_sk = hd.household_demographics_sk
  AND d.d_year = 1999
  AND d.d_moy = 11
  AND cd.cd_dep_count = 2`

// q91EPPs is the epp ordering used for the Q91 family; the first two
// match the paper's Fig. 7 axes (returns⋈date_dim, customer⋈address).
var q91EPPs = [][2]string{
	{"cr.cr_returned_date_sk", "d.date_dim_sk"},
	{"c.c_current_addr_sk", "ca.customer_address_sk"},
	{"cr.cr_returning_customer_sk", "c.c_customer_sk"},
	{"c.c_current_hdemo_sk", "hd.household_demographics_sk"},
	{"c.c_current_cdemo_sk", "cd.customer_demographics_sk"},
	{"cr.cr_call_center_sk", "cc.call_center_sk"},
}

// q91Spec builds the xD_Q91 member of the family.
func q91Spec(d, res int) Spec {
	return Spec{
		Name: fmt.Sprintf("%dD_Q91", d), D: d, Schema: "tpcds",
		SQL: q91SQL, EPPs: q91EPPs[:d], Res: res,
	}
}

// resFor are the default grid resolutions per dimensionality, sized so
// that a full POSP sweep plus an exhaustive MSO evaluation runs in
// seconds on a single core (see EXPERIMENTS.md).
var resFor = map[int]int{1: 64, 2: 24, 3: 12, 4: 8, 5: 6, 6: 5}

// EQ is the running example of the paper's introduction: a three-way
// join with two error-prone join predicates and a price filter.
func EQ() Spec {
	return Spec{
		Name: "EQ", D: 2, Schema: "tpcds",
		SQL: `
SELECT *
FROM store_sales ss, item i, customer c
WHERE ss.ss_item_sk = i.item_sk
  AND ss.ss_customer_sk = c.c_customer_sk
  AND i.i_current_price < 100`,
		EPPs: [][2]string{
			{"ss.ss_item_sk", "i.item_sk"},
			{"ss.ss_customer_sk", "c.c_customer_sk"},
		},
		Res: resFor[2],
	}
}

// Suite returns the eleven TPC-DS benchmark queries of Figs. 8/10/11/13
// and Tables 2/4, in the paper's order.
func Suite() []Spec {
	return []Spec{
		{
			Name: "3D_Q15", D: 3, Schema: "tpcds",
			SQL: `
SELECT *
FROM catalog_sales cs, customer c, customer_address ca, date_dim d
WHERE cs.cs_bill_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.customer_address_sk
  AND cs.cs_sold_date_sk = d.date_dim_sk
  AND d.d_qoy = 1`,
			EPPs: [][2]string{
				{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
				{"c.c_current_addr_sk", "ca.customer_address_sk"},
				{"cs.cs_sold_date_sk", "d.date_dim_sk"},
			},
			Res: resFor[3],
		},
		{
			Name: "3D_Q96", D: 3, Schema: "tpcds",
			SQL: `
SELECT *
FROM store_sales ss, household_demographics hd, time_dim t, store s
WHERE ss.ss_hdemo_sk = hd.household_demographics_sk
  AND ss.ss_sold_time_sk = t.time_dim_sk
  AND ss.ss_store_sk = s.store_sk
  AND t.t_hour = 8
  AND hd.hd_dep_count = 5`,
			EPPs: [][2]string{
				{"ss.ss_hdemo_sk", "hd.household_demographics_sk"},
				{"ss.ss_sold_time_sk", "t.time_dim_sk"},
				{"ss.ss_store_sk", "s.store_sk"},
			},
			Res: resFor[3],
		},
		{
			Name: "4D_Q7", D: 4, Schema: "tpcds",
			SQL: `
SELECT *
FROM store_sales ss, customer_demographics cd, date_dim d, item i, promotion p
WHERE ss.ss_cdemo_sk = cd.customer_demographics_sk
  AND ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_item_sk = i.item_sk
  AND ss.ss_promo_sk = p.promotion_sk
  AND d.d_year = 2000
  AND cd.cd_dep_count <= 3`,
			EPPs: [][2]string{
				{"ss.ss_cdemo_sk", "cd.customer_demographics_sk"},
				{"ss.ss_sold_date_sk", "d.date_dim_sk"},
				{"ss.ss_item_sk", "i.item_sk"},
				{"ss.ss_promo_sk", "p.promotion_sk"},
			},
			Res: resFor[4],
		},
		{
			Name: "4D_Q26", D: 4, Schema: "tpcds",
			SQL: `
SELECT *
FROM catalog_sales cs, customer_demographics cd, date_dim d, item i, promotion p
WHERE cs.cs_bill_cdemo_sk = cd.customer_demographics_sk
  AND cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_item_sk = i.item_sk
  AND cs.cs_promo_sk = p.promotion_sk
  AND d.d_year = 2000
  AND cd.cd_dep_count = 1`,
			EPPs: [][2]string{
				{"cs.cs_bill_cdemo_sk", "cd.customer_demographics_sk"},
				{"cs.cs_sold_date_sk", "d.date_dim_sk"},
				{"cs.cs_item_sk", "i.item_sk"},
				{"cs.cs_promo_sk", "p.promotion_sk"},
			},
			Res: resFor[4],
		},
		{
			Name: "4D_Q27", D: 4, Schema: "tpcds",
			SQL: `
SELECT *
FROM store_sales ss, customer_demographics cd, date_dim d, store s, item i
WHERE ss.ss_cdemo_sk = cd.customer_demographics_sk
  AND ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_store_sk = s.store_sk
  AND ss.ss_item_sk = i.item_sk
  AND d.d_year = 1999
  AND cd.cd_dep_count = 4`,
			EPPs: [][2]string{
				{"ss.ss_cdemo_sk", "cd.customer_demographics_sk"},
				{"ss.ss_sold_date_sk", "d.date_dim_sk"},
				{"ss.ss_store_sk", "s.store_sk"},
				{"ss.ss_item_sk", "i.item_sk"},
			},
			Res: resFor[4],
		},
		q91Spec(4, resFor[4]),
		{
			Name: "5D_Q19", D: 5, Schema: "tpcds",
			SQL: `
SELECT *
FROM store_sales ss, date_dim d, item i, customer c, customer_address ca, store s
WHERE ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_item_sk = i.item_sk
  AND ss.ss_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.customer_address_sk
  AND ss.ss_store_sk = s.store_sk
  AND d.d_moy = 11
  AND d.d_year = 1999
  AND i.i_manufact_id <= 20`,
			EPPs: [][2]string{
				{"ss.ss_sold_date_sk", "d.date_dim_sk"},
				{"ss.ss_item_sk", "i.item_sk"},
				{"ss.ss_customer_sk", "c.c_customer_sk"},
				{"c.c_current_addr_sk", "ca.customer_address_sk"},
				{"ss.ss_store_sk", "s.store_sk"},
			},
			Res: resFor[5],
		},
		{
			Name: "5D_Q29", D: 5, Schema: "tpcds",
			SQL: `
SELECT *
FROM store_sales ss, store_returns sr, catalog_sales cs, date_dim d, item i, store s
WHERE ss.ss_item_sk = sr.sr_item_sk
  AND sr.sr_customer_sk = cs.cs_bill_customer_sk
  AND ss.ss_sold_date_sk = d.date_dim_sk
  AND cs.cs_item_sk = i.item_sk
  AND ss.ss_store_sk = s.store_sk
  AND d.d_moy = 9`,
			EPPs: [][2]string{
				{"ss.ss_item_sk", "sr.sr_item_sk"},
				{"sr.sr_customer_sk", "cs.cs_bill_customer_sk"},
				{"ss.ss_sold_date_sk", "d.date_dim_sk"},
				{"cs.cs_item_sk", "i.item_sk"},
				{"ss.ss_store_sk", "s.store_sk"},
			},
			Res: resFor[5],
		},
		{
			Name: "5D_Q84", D: 5, Schema: "tpcds",
			SQL: `
SELECT *
FROM customer c, customer_address ca, customer_demographics cd,
     household_demographics hd, income_band ib, store_returns sr
WHERE c.c_current_addr_sk = ca.customer_address_sk
  AND c.c_current_cdemo_sk = cd.customer_demographics_sk
  AND c.c_current_hdemo_sk = hd.household_demographics_sk
  AND hd.hd_income_band_sk = ib.income_band_sk
  AND sr.sr_cdemo_sk = cd.customer_demographics_sk
  AND ca.ca_state_id = 5
  AND ib.ib_lower_bound <= 40000`,
			EPPs: [][2]string{
				{"c.c_current_addr_sk", "ca.customer_address_sk"},
				{"c.c_current_cdemo_sk", "cd.customer_demographics_sk"},
				{"c.c_current_hdemo_sk", "hd.household_demographics_sk"},
				{"hd.hd_income_band_sk", "ib.income_band_sk"},
				{"sr.sr_cdemo_sk", "cd.customer_demographics_sk"},
			},
			Res: resFor[5],
		},
		{
			Name: "6D_Q18", D: 6, Schema: "tpcds",
			SQL: `
SELECT *
FROM catalog_sales cs, customer_demographics cd, customer c,
     customer_address ca, date_dim d, item i, household_demographics hd
WHERE cs.cs_bill_cdemo_sk = cd.customer_demographics_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.customer_address_sk
  AND cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_item_sk = i.item_sk
  AND c.c_current_hdemo_sk = hd.household_demographics_sk
  AND d.d_year = 1998
  AND cd.cd_dep_count = 1`,
			EPPs: [][2]string{
				{"cs.cs_bill_cdemo_sk", "cd.customer_demographics_sk"},
				{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
				{"c.c_current_addr_sk", "ca.customer_address_sk"},
				{"cs.cs_sold_date_sk", "d.date_dim_sk"},
				{"cs.cs_item_sk", "i.item_sk"},
				{"c.c_current_hdemo_sk", "hd.household_demographics_sk"},
			},
			Res: resFor[6],
		},
		q91Spec(6, resFor[6]),
	}
}

// Q91Family returns the Fig. 9 dimensionality series 2D..6D over Q91.
func Q91Family() []Spec {
	out := make([]Spec, 0, 5)
	for d := 2; d <= 6; d++ {
		out = append(out, q91Spec(d, resFor[d]))
	}
	return out
}

// JOBQ1a is JOB benchmark query 1a (§6.5) over the IMDB-like schema,
// with the implicit cyclic predicates dropped as in the paper's
// work-around.
func JOBQ1a() Spec {
	return Spec{
		Name: "JOB_Q1a", D: 4, Schema: "imdb",
		SQL: `
SELECT *
FROM company_type ct, movie_companies mc, title t, movie_info_idx mi, info_type it
WHERE ct.ct_id = mc.mc_company_type_id
  AND mc.mc_movie_id = t.t_id
  AND t.t_id = mi.mi_idx_movie_id
  AND mi.mi_idx_info_type_id = it.it_id
  AND ct.ct_kind = 2
  AND it.it_info = 100
  AND mc.mc_note_kind <= 4`,
		EPPs: [][2]string{
			{"ct.ct_id", "mc.mc_company_type_id"},
			{"mc.mc_movie_id", "t.t_id"},
			{"t.t_id", "mi.mi_idx_movie_id"},
			{"mi.mi_idx_info_type_id", "it.it_id"},
		},
		Res: resFor[4],
	}
}

// ByName resolves any suite/family/example query by its paper name.
func ByName(name string) (Spec, error) {
	var all []Spec
	all = append(all, Suite()...)
	all = append(all, Q91Family()...)
	all = append(all, EQ(), JOBQ1a())
	for _, s := range all {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown query %q", name)
}

// Names lists the distinct query names available via ByName.
func Names() []string {
	seen := map[string]bool{}
	var out []string
	var all []Spec
	all = append(all, Suite()...)
	all = append(all, Q91Family()...)
	all = append(all, EQ(), JOBQ1a())
	for _, s := range all {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}

package optimizer

import (
	"testing"

	"repro/internal/cost"
)

const sevenWay = `
SELECT *
FROM catalog_returns cr, call_center cc, date_dim d, customer c,
     customer_address ca, customer_demographics cd, household_demographics hd
WHERE cr.cr_call_center_sk = cc.call_center_sk
  AND cr.cr_returned_date_sk = d.date_dim_sk
  AND cr.cr_returning_customer_sk = c.c_customer_sk
  AND c.c_current_addr_sk = ca.customer_address_sk
  AND c.c_current_cdemo_sk = cd.customer_demographics_sk
  AND c.c_current_hdemo_sk = hd.household_demographics_sk
  AND d.d_year = 1999
  AND d.d_moy = 11
  AND cd.cd_dep_count = 2`

// TestRunnerMatchesBest drives Runner.Best and Optimizer.Best across a
// grid of epp selectivities and requires bit-identical results: same
// plan signature, same cost, same cardinality. This is the contract the
// POSP sweep relies on when it swaps the naive search for the runner.
func TestRunnerMatchesBest(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		epps [][2]string
	}{
		{"threeWay", threeWay, [][2]string{
			{"cs.cs_sold_date_sk", "d.date_dim_sk"},
			{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
		}},
		{"sevenWay", sevenWay, [][2]string{
			{"cr.cr_returned_date_sk", "d.date_dim_sk"},
			{"cr.cr_returning_customer_sk", "c.c_customer_sk"},
			{"c.c_current_addr_sk", "ca.customer_address_sk"},
		}},
	}
	sels := []float64{1e-5, 1e-3, 0.05, 0.4, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, env, o := setup(t, tc.sql, tc.epps)
			r := o.NewRunner()
			sel := make([]float64, q.D())
			var walk func(d int)
			walk = func(d int) {
				if d < q.D() {
					for _, s := range sels {
						sel[d] = s
						walk(d + 1)
					}
					return
				}
				SetEPPSel(env, q, sel)
				want := o.Best(env)
				got := r.Best(env)
				if want == nil || got == nil {
					t.Fatalf("nil plan at sel=%v (want=%v got=%v)", sel, want, got)
				}
				if ws, gs := want.Root.Signature(), got.Root.Signature(); ws != gs {
					t.Fatalf("plan mismatch at sel=%v:\n  best:   %s\n  runner: %s", sel, ws, gs)
				}
				if want.Cost != got.Cost || want.Rows != got.Rows {
					t.Fatalf("cost/rows mismatch at sel=%v: best=(%v,%v) runner=(%v,%v)",
						sel, want.Cost, want.Rows, got.Cost, got.Rows)
				}
				if err := got.Root.Validate(); err != nil {
					t.Fatalf("runner plan invalid at sel=%v: %v", sel, err)
				}
			}
			walk(0)
		})
	}
}

// TestRunnerPlanOutlivesArena checks the returned plan is a deep copy:
// reusing the runner (which recycles its arenas) must not corrupt plans
// handed out earlier.
func TestRunnerPlanOutlivesArena(t *testing.T) {
	q, env, o := setup(t, threeWay, [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	})
	r := o.NewRunner()
	SetEPPSel(env, q, []float64{1e-5, 1e-5})
	first := r.Best(env)
	sig := first.Root.Signature()
	for i := 0; i < 10; i++ {
		SetEPPSel(env, q, []float64{1, 1})
		r.Best(env)
	}
	if got := first.Root.Signature(); got != sig {
		t.Fatalf("earlier plan mutated by later Best calls: %s -> %s", sig, got)
	}
	if err := first.Root.Validate(); err != nil {
		t.Fatalf("earlier plan corrupted: %v", err)
	}
}

// TestJoinCostComposesCost checks the incremental JoinCost form agrees
// bitwise with the recursive Cost on a full plan tree.
func TestJoinCostComposesCost(t *testing.T) {
	q, env, o := setup(t, threeWay, [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	})
	SetEPPSel(env, q, []float64{1e-3, 0.2})
	p := o.Best(env)
	m := o.model
	root := p.Root
	l := m.Cost(root.Left, env)
	var r cost.Result
	if root.Right != nil && root.Join != nil {
		r = m.Cost(root.Right, env)
	}
	composed := m.JoinCost(root, l, r, env)
	direct := m.Cost(root, env)
	if composed != direct {
		t.Fatalf("JoinCost composition %v != recursive Cost %v", composed, direct)
	}
}

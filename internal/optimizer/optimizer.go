// Package optimizer implements a System-R style dynamic-programming
// query optimizer over the physical operators of package plan. Given a
// selectivity environment it returns the cost-optimal bushy join tree;
// repeated invocations with injected selectivities enumerate the
// Parametric Optimal Set of Plans (POSP) over the ESS.
//
// Beyond the classic Best search, the optimizer supports spill-class
// enumeration: the cheapest plan per "first spilled epp" class, the
// engine hook AlignedBound needs to find minimum-penalty replacement
// plans (§5.1 of the paper; the authors patched PostgreSQL for this).
package optimizer

import (
	"math/bits"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// Plan is an optimized plan with its estimated cost and cardinality.
type Plan struct {
	// Root is the physical plan tree.
	Root *plan.Node
	// Cost is the estimated total cost under the env used to optimize.
	Cost float64
	// Rows is the estimated output cardinality.
	Rows float64
}

// Optimizer searches the bushy plan space of one query.
type Optimizer struct {
	q     *query.Query
	model *cost.Model
	edges []edge
	// hasFilter marks relations where an index scan is applicable.
	hasFilter []bool
	// eppDim maps join ID to ESS dimension, -1 for non-epps.
	eppDim []int
}

type edge struct {
	a, b   int // relation indexes
	joinID int
}

// New builds an optimizer for the query. The query must validate.
func New(q *query.Query, model *cost.Model) *Optimizer {
	o := &Optimizer{q: q, model: model}
	for _, j := range q.Joins {
		o.edges = append(o.edges, edge{a: j.LeftRel, b: j.RightRel, joinID: j.ID})
	}
	o.hasFilter = make([]bool, len(q.Relations))
	for i := range q.Relations {
		o.hasFilter[i] = len(q.Relations[i].Filters) > 0
	}
	o.eppDim = make([]int, len(q.Joins))
	for i := range o.eppDim {
		o.eppDim[i] = q.EPPDim(i)
	}
	return o
}

// Query returns the query being optimized.
func (o *Optimizer) Query() *query.Query { return o.q }

// Best returns the cost-optimal plan under env.
func (o *Optimizer) Best(env *cost.Env) *Plan {
	cands := o.search(env, nil)
	return bestOf(cands)
}

// BestPerSpillClass returns, for each remaining epp dimension, the
// cheapest plan whose spill-node identification (against remaining)
// selects that epp. Keys are join IDs. Plans exist only for classes the
// plan space can realize.
func (o *Optimizer) BestPerSpillClass(env *cost.Env, remaining map[int]bool) map[int]*Plan {
	cands := o.search(env, remaining)
	out := make(map[int]*Plan)
	for _, c := range cands {
		if c == nil || c.spillJoin < 0 {
			continue
		}
		if prev := out[c.spillJoin]; prev == nil || c.cost < prev.Cost {
			out[c.spillJoin] = &Plan{Root: c.node, Cost: c.cost, Rows: c.rows}
		}
	}
	return out
}

// cand is a DP candidate: a plan for some relation subset together with
// its cost, cardinality, and spill class.
type cand struct {
	node *plan.Node
	cost float64
	rows float64
	// spillJoin is the join ID the plan would spill on (first unlearned
	// epp in pipeline order), or -1.
	spillJoin int
	sig       string // lazily computed for deterministic tie-breaks
}

// search runs the DP. When classes is nil only the single cheapest
// candidate per subset is kept; otherwise the cheapest per spill class.
func (o *Optimizer) search(env *cost.Env, classes map[int]bool) []*cand {
	n := len(o.q.Relations)
	full := uint32(1)<<uint(n) - 1
	// table[mask] is a small slice of candidates for the subset.
	table := make([][]*cand, full+1)

	for r := 0; r < n; r++ {
		table[1<<uint(r)] = o.scanCands(r, env)
	}

	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		var results []*cand
		// Enumerate proper submask splits; both orientations appear.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub > other {
				continue // each unordered split once; orientations handled below
			}
			ls, rs := table[sub], table[other]
			if ls == nil || rs == nil {
				continue
			}
			joinIDs := o.crossingJoins(sub, other)
			if len(joinIDs) == 0 {
				continue // avoid cross products
			}
			for _, l := range ls {
				for _, r := range rs {
					results = o.emitJoins(results, l, r, joinIDs, env, classes)
					results = o.emitJoins(results, r, l, joinIDs, env, classes)
				}
			}
		}
		table[mask] = results
	}
	return table[full]
}

// scanCands returns the access-path candidates for one relation.
func (o *Optimizer) scanCands(rel int, env *cost.Env) []*cand {
	mk := func(m plan.ScanMethod) *cand {
		node := plan.NewScan(rel, m)
		res := o.model.Cost(node, env)
		return &cand{node: node, cost: res.Cost, rows: res.Rows, spillJoin: -1}
	}
	seq := mk(plan.SeqScan)
	if !o.hasFilter[rel] {
		return []*cand{seq}
	}
	idx := mk(plan.IndexScan)
	if idx.cost < seq.cost {
		return []*cand{idx}
	}
	return []*cand{seq}
}

// crossingJoins returns join IDs with one endpoint in each subset, the
// epp joins first so the primary (physical) predicate of a node is the
// epp when one exists.
func (o *Optimizer) crossingJoins(a, b uint32) []int {
	var ids []int
	for _, e := range o.edges {
		am, bm := uint32(1)<<uint(e.a), uint32(1)<<uint(e.b)
		if (am&a != 0 && bm&b != 0) || (am&b != 0 && bm&a != 0) {
			ids = append(ids, e.joinID)
		}
	}
	return ids
}

// emitJoins generates all physical joins of (l outer, r inner) and folds
// them into the candidate set with per-class pruning.
func (o *Optimizer) emitJoins(results []*cand, l, r *cand, joinIDs []int, env *cost.Env, classes map[int]bool) []*cand {
	methods := [...]plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.IndexNLJoin, plan.NLJoin}
	for _, m := range methods {
		if m == plan.IndexNLJoin && !r.node.IsScan() {
			continue
		}
		node := plan.NewJoin(m, joinIDs, l.node, r.node)
		res := o.model.Cost(node, env)
		c := &cand{
			node:      node,
			cost:      res.Cost,
			rows:      res.Rows,
			spillJoin: o.spillClass(m, l, r, joinIDs, classes),
		}
		results = insertCand(results, c, classes != nil)
	}
	return results
}

// spillClass composes the "first spilled epp" of a joined plan from its
// children, following pipeline execution order (see plan.Pipelines):
// HashJoin and NLJoin run the inner side's pipelines first, MergeJoin
// and IndexNLJoin the outer side's.
func (o *Optimizer) spillClass(m plan.JoinMethod, l, r *cand, joinIDs []int, classes map[int]bool) int {
	if classes == nil {
		return -1
	}
	own := -1
	for _, id := range joinIDs {
		if classes[id] {
			own = id
			break
		}
	}
	pick := func(first, second int) int {
		if first >= 0 {
			return first
		}
		if second >= 0 {
			return second
		}
		return own
	}
	switch m {
	case plan.HashJoin, plan.NLJoin:
		return pick(r.spillJoin, l.spillJoin)
	case plan.MergeJoin:
		return pick(l.spillJoin, r.spillJoin)
	case plan.IndexNLJoin:
		return pick(l.spillJoin, -1)
	default:
		panic("optimizer: unknown join method")
	}
}

// insertCand keeps the cheapest candidate overall and, if perClass, the
// cheapest per spill class. Ties break on plan signature so that POSP
// enumeration is deterministic.
func insertCand(results []*cand, c *cand, perClass bool) []*cand {
	if !perClass {
		if len(results) == 0 {
			return append(results, c)
		}
		if better(c, results[0]) {
			results[0] = c
		}
		return results
	}
	for i, prev := range results {
		if prev.spillJoin == c.spillJoin {
			if better(c, prev) {
				results[i] = c
			}
			return results
		}
	}
	return append(results, c)
}

func better(a, b *cand) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.sig == "" {
		a.sig = a.node.Signature()
	}
	if b.sig == "" {
		b.sig = b.node.Signature()
	}
	return a.sig < b.sig
}

func bestOf(cands []*cand) *Plan {
	var best *cand
	for _, c := range cands {
		if best == nil || better(c, best) {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	return &Plan{Root: best.node, Cost: best.cost, Rows: best.rows}
}

package optimizer

import (
	"repro/internal/cost"
	"repro/internal/query"
	"repro/internal/stats"
)

// BuildEnv constructs the base costing environment for a query: raw and
// filtered cardinalities and index selectivities from statistics, and
// every join selectivity initialized to its statistics estimate.
// Robust-processing code then overrides the epp entries per ESS
// location via SetEPPSel; the non-epp entries stay at their estimates,
// which the paper's framework assumes accurate.
func BuildEnv(q *query.Query, st *stats.Stats) *cost.Env {
	n := len(q.Relations)
	env := &cost.Env{
		RawRows:      make([]float64, n),
		FilteredRows: make([]float64, n),
		IndexSel:     make([]float64, n),
		JoinSel:      make([]float64, len(q.Joins)),
	}
	for i := range q.Relations {
		env.RawRows[i] = st.TableRows(q.Relations[i].Table)
		env.FilteredRows[i] = st.FilteredRows(q, i)
		if env.FilteredRows[i] < 1 {
			env.FilteredRows[i] = 1
		}
		env.IndexSel[i] = st.BestIndexSel(q, i)
	}
	for _, j := range q.Joins {
		env.JoinSel[j.ID] = st.JoinSelEstimate(q, j)
	}
	return env
}

// SetEPPSel overrides the epp join selectivities of env with the given
// ESS location (sel[d] is the selectivity of dimension d).
func SetEPPSel(env *cost.Env, q *query.Query, sel []float64) {
	if len(sel) != q.D() {
		panic("optimizer: selectivity vector dimension mismatch")
	}
	for d, joinID := range q.EPPs {
		env.JoinSel[joinID] = sel[d]
	}
}

package optimizer

import (
	"math/bits"

	"repro/internal/cost"
	"repro/internal/plan"
)

// Runner owns reusable DP state for repeated Best invocations against
// environments that differ only in join selectivities — the POSP sweep
// pattern, where SetEPPSel repositions one shared env across the grid.
// It cuts the two hot costs of the naive search: per-candidate subtree
// re-costing (replaced by cost.Model.JoinCost composition over the DP
// table) and per-call heap allocation (DP nodes, specs, and candidates
// come from arenas recycled between calls; only the winning plan is
// deep-copied out). Results are bit-identical to Optimizer.Best.
//
// A Runner is not safe for concurrent use; create one per goroutine.
// The scan-candidate cache assumes the env's RawRows, FilteredRows, and
// IndexSel stay fixed across calls (scan costs do not depend on
// JoinSel), which SetEPPSel preserves.
type Runner struct {
	o *Optimizer

	// table holds the cheapest candidate per relation subset.
	table []*cand

	// scanReady guards the per-relation scan-candidate cache.
	scanReady  bool
	scanMethod []plan.ScanMethod
	scanRes    []cost.Result

	nodes arena[plan.Node]
	scans arena[plan.ScanSpec]
	joins arena[plan.JoinSpec]
	cands arena[cand]
	ints  intSlab
}

// NewRunner returns a fresh runner over the optimizer's query and model.
func (o *Optimizer) NewRunner() *Runner { return &Runner{o: o} }

// Best returns the cost-optimal plan under env, bit-identical to
// Optimizer.Best. The returned plan shares no memory with the runner.
func (r *Runner) Best(env *cost.Env) *Plan {
	o := r.o
	n := len(o.q.Relations)
	full := uint32(1)<<uint(n) - 1
	if r.table == nil {
		r.table = make([]*cand, full+1)
	} else {
		clear(r.table)
	}
	r.nodes.reset()
	r.scans.reset()
	r.joins.reset()
	r.cands.reset()
	r.ints.reset()
	if !r.scanReady {
		r.primeScans(env)
	}

	for rel := 0; rel < n; rel++ {
		node := r.newScan(rel)
		res := r.scanRes[rel]
		c := r.cands.alloc()
		c.node, c.cost, c.rows, c.spillJoin = node, res.Cost, res.Rows, -1
		r.table[1<<uint(rel)] = c
	}

	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		var best *cand
		// Enumerate proper submask splits; both orientations appear.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub > other {
				continue // each unordered split once; orientations handled below
			}
			l, rr := r.table[sub], r.table[other]
			if l == nil || rr == nil {
				continue
			}
			ids := r.crossingJoins(sub, other)
			if len(ids) == 0 {
				continue // avoid cross products
			}
			best = r.emit(best, l, rr, ids, env)
			best = r.emit(best, rr, l, ids, env)
		}
		r.table[mask] = best
	}

	b := r.table[full]
	if b == nil {
		return nil
	}
	return &Plan{Root: b.node.Clone(), Cost: b.cost, Rows: b.rows}
}

// primeScans fills the per-relation access-path cache, mirroring
// scanCands' seq-vs-index choice.
func (r *Runner) primeScans(env *cost.Env) {
	o := r.o
	n := len(o.q.Relations)
	r.scanMethod = make([]plan.ScanMethod, n)
	r.scanRes = make([]cost.Result, n)
	for rel := 0; rel < n; rel++ {
		seq := o.model.Cost(plan.NewScan(rel, plan.SeqScan), env)
		method, res := plan.SeqScan, seq
		if o.hasFilter[rel] {
			if idx := o.model.Cost(plan.NewScan(rel, plan.IndexScan), env); idx.Cost < seq.Cost {
				method, res = plan.IndexScan, idx
			}
		}
		r.scanMethod[rel] = method
		r.scanRes[rel] = res
	}
	r.scanReady = true
}

// emit folds the physical joins of (l outer, rr inner) into the running
// best, matching emitJoins' method order and tie-breaks.
func (r *Runner) emit(best, l, rr *cand, ids []int, env *cost.Env) *cand {
	methods := [...]plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.IndexNLJoin, plan.NLJoin}
	for _, m := range methods {
		if m == plan.IndexNLJoin && !rr.node.IsScan() {
			continue
		}
		node := r.newJoin(m, ids, l.node, rr.node)
		res := r.o.model.JoinCost(node,
			cost.Result{Rows: l.rows, Cost: l.cost},
			cost.Result{Rows: rr.rows, Cost: rr.cost}, env)
		c := r.cands.alloc()
		c.node, c.cost, c.rows, c.spillJoin = node, res.Cost, res.Rows, -1
		if best == nil || better(c, best) {
			best = c
		}
	}
	return best
}

func (r *Runner) newScan(rel int) *plan.Node {
	spec := r.scans.alloc()
	spec.Rel, spec.Method = rel, r.scanMethod[rel]
	n := r.nodes.alloc()
	n.Scan = spec
	n.Rels = 1 << uint(rel)
	return n
}

func (r *Runner) newJoin(m plan.JoinMethod, ids []int, left, right *plan.Node) *plan.Node {
	spec := r.joins.alloc()
	spec.Method, spec.JoinIDs = m, ids
	n := r.nodes.alloc()
	n.Join = spec
	n.Left, n.Right = left, right
	n.Rels = left.Rels | right.Rels
	return n
}

// crossingJoins is Optimizer.crossingJoins with the result in the int
// slab instead of the heap.
func (r *Runner) crossingJoins(a, b uint32) []int {
	o := r.o
	cnt := 0
	for _, e := range o.edges {
		am, bm := uint32(1)<<uint(e.a), uint32(1)<<uint(e.b)
		if (am&a != 0 && bm&b != 0) || (am&b != 0 && bm&a != 0) {
			cnt++
		}
	}
	if cnt == 0 {
		return nil
	}
	ids := r.ints.alloc(cnt)
	i := 0
	for _, e := range o.edges {
		am, bm := uint32(1)<<uint(e.a), uint32(1)<<uint(e.b)
		if (am&a != 0 && bm&b != 0) || (am&b != 0 && bm&a != 0) {
			ids[i] = e.joinID
			i++
		}
	}
	return ids
}

// arenaChunk is the per-chunk element count of the DP arenas. Chunks are
// never moved or freed, so pointers into them stay valid until reset.
const arenaChunk = 512

// arena is a chunked bump allocator whose allocations live until reset.
type arena[T any] struct {
	chunks  [][]T
	ci, off int
}

func (a *arena[T]) alloc() *T {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
	p := &a.chunks[a.ci][a.off]
	a.off++
	if a.off == arenaChunk {
		a.ci++
		a.off = 0
	}
	var zero T
	*p = zero
	return p
}

func (a *arena[T]) reset() { a.ci, a.off = 0, 0 }

// intSlab bump-allocates small []int values (join ID lists) out of
// fixed-size chunks.
type intSlab struct {
	chunks  [][]int
	ci, off int
}

func (s *intSlab) alloc(n int) []int {
	if n > arenaChunk {
		return make([]int, n) // oversized: fall back to the heap
	}
	if s.ci < len(s.chunks) && s.off+n > arenaChunk {
		s.ci++
		s.off = 0
	}
	if s.ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]int, arenaChunk))
	}
	out := s.chunks[s.ci][s.off : s.off+n : s.off+n]
	s.off += n
	return out
}

func (s *intSlab) reset() { s.ci, s.off = 0, 0 }

package optimizer

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

func setup(t *testing.T, sql string, epps [][2]string) (*query.Query, *cost.Env, *Optimizer) {
	t.Helper()
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("t", cat, sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range epps {
		if err := sqlparse.MarkEPP(q, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := stats.FromCatalog(cat)
	env := BuildEnv(q, st)
	o := New(q, cost.NewModel(cost.DefaultParams()))
	return q, env, o
}

const threeWay = `
SELECT * FROM catalog_sales cs, date_dim d, customer c
WHERE cs.cs_sold_date_sk = d.date_dim_sk
  AND cs.cs_bill_customer_sk = c.c_customer_sk
  AND d.d_year = 2000`

func TestBestReturnsValidPlan(t *testing.T) {
	q, env, o := setup(t, threeWay, nil)
	p := o.Best(env)
	if p == nil {
		t.Fatal("no plan")
	}
	if err := p.Root.Validate(); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if p.Root.NumRels() != len(q.Relations) {
		t.Error("plan must cover all relations")
	}
	if p.Cost <= 0 || p.Rows < 0 {
		t.Error("implausible cost/rows")
	}
	// Both joins must appear exactly once.
	seen := map[int]int{}
	p.Root.Walk(func(n *plan.Node) {
		if n.Join != nil {
			for _, id := range n.Join.JoinIDs {
				seen[id]++
			}
		}
	})
	if seen[0] != 1 || seen[1] != 1 {
		t.Errorf("join predicate usage = %v", seen)
	}
}

func TestBestCostMatchesModel(t *testing.T) {
	_, env, o := setup(t, threeWay, nil)
	p := o.Best(env)
	re := o.model.Cost(p.Root, env)
	if math.Abs(re.Cost-p.Cost) > 1e-6 || math.Abs(re.Rows-p.Rows) > 1e-6 {
		t.Fatalf("recost (%v,%v) != reported (%v,%v)", re.Cost, re.Rows, p.Cost, p.Rows)
	}
}

// Brute-force reference: enumerate every bushy plan recursively and
// check the DP's plan is never beaten.
func TestBestIsOptimalVsBruteForce(t *testing.T) {
	q, env, o := setup(t, threeWay, nil)
	best := math.Inf(1)
	var enumerate func(masks []uint32, plans []*plan.Node)
	n := len(q.Relations)

	var joinable func(a, b uint32) []int
	joinable = func(a, b uint32) []int { return o.crossingJoins(a, b) }

	model := cost.NewModel(cost.DefaultParams())
	var rec func(parts []uint32, nodes []*plan.Node)
	rec = func(parts []uint32, nodes []*plan.Node) {
		if len(parts) == 1 {
			if c := model.Cost(nodes[0], env).Cost; c < best {
				best = c
			}
			return
		}
		for i := 0; i < len(parts); i++ {
			for j := 0; j < len(parts); j++ {
				if i == j {
					continue
				}
				ids := joinable(parts[i], parts[j])
				if len(ids) == 0 {
					continue
				}
				for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.IndexNLJoin, plan.NLJoin} {
					if m == plan.IndexNLJoin && !nodes[j].IsScan() {
						continue
					}
					var np []uint32
					var nn []*plan.Node
					for k := 0; k < len(parts); k++ {
						if k != i && k != j {
							np = append(np, parts[k])
							nn = append(nn, nodes[k])
						}
					}
					joined := plan.NewJoin(m, ids, nodes[i], nodes[j])
					rec(append(np, parts[i]|parts[j]), append(nn, joined))
				}
			}
		}
	}
	_ = enumerate
	var parts []uint32
	var nodes []*plan.Node
	for r := 0; r < n; r++ {
		parts = append(parts, 1<<uint(r))
		// brute force with both access paths
		for _, sm := range []plan.ScanMethod{plan.SeqScan} {
			_ = sm
		}
		nodes = append(nodes, o.scanCands(r, env)[0].node)
	}
	rec(parts, nodes)

	p := o.Best(env)
	if p.Cost > best+1e-6 {
		t.Fatalf("DP cost %v worse than brute force %v", p.Cost, best)
	}
}

func TestOptimalPlanChangesWithSelectivity(t *testing.T) {
	q, env, o := setup(t, threeWay, [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	})
	SetEPPSel(env, q, []float64{1e-5, 1e-5})
	low := o.Best(env).Root.Signature()
	SetEPPSel(env, q, []float64{1, 1})
	high := o.Best(env).Root.Signature()
	if low == high {
		t.Errorf("expected different optimal plans at extremes, both %s", low)
	}
}

func TestPCMOnOptimalCosts(t *testing.T) {
	// Optimal cost (min over plans) must also be monotone.
	q, env, o := setup(t, threeWay, [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	})
	prev := 0.0
	for _, s := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		SetEPPSel(env, q, []float64{s, s})
		c := o.Best(env).Cost
		if c <= prev {
			t.Fatalf("optimal cost not increasing at sel=%v: %v after %v", s, c, prev)
		}
		prev = c
	}
}

func TestBestDeterministic(t *testing.T) {
	_, env, o := setup(t, threeWay, nil)
	a := o.Best(env).Root.Signature()
	for i := 0; i < 5; i++ {
		if b := o.Best(env).Root.Signature(); b != a {
			t.Fatalf("non-deterministic plan: %s vs %s", a, b)
		}
	}
}

func TestBestPerSpillClass(t *testing.T) {
	q, env, o := setup(t, threeWay, [][2]string{
		{"cs.cs_sold_date_sk", "d.date_dim_sk"},
		{"cs.cs_bill_customer_sk", "c.c_customer_sk"},
	})
	SetEPPSel(env, q, []float64{1e-3, 1e-3})
	remaining := map[int]bool{q.EPPs[0]: true, q.EPPs[1]: true}
	perClass := o.BestPerSpillClass(env, remaining)
	if len(perClass) == 0 {
		t.Fatal("no spill classes found")
	}
	bestCost := o.Best(env).Cost
	for joinID, p := range perClass {
		// The plan's actual spill choice must match its class.
		if got := plan.SpillJoin(p.Root, remaining); got != joinID {
			t.Errorf("class %d plan actually spills on %d (plan %s)", joinID, got, p.Root.Signature())
		}
		if p.Cost < bestCost-1e-9 {
			t.Errorf("class plan cheaper than global best")
		}
		if err := p.Root.Validate(); err != nil {
			t.Errorf("class %d plan invalid: %v", joinID, err)
		}
	}
	// With one epp learned, remaining classes shrink.
	rem1 := map[int]bool{q.EPPs[1]: true}
	pc1 := o.BestPerSpillClass(env, rem1)
	for joinID := range pc1 {
		if joinID != q.EPPs[1] {
			t.Errorf("unexpected class %d with one remaining epp", joinID)
		}
	}
}

// The compositional spill-class computation must agree with the direct
// pipeline-based SpillJoin on every candidate the DP can produce.
func TestSpillClassMatchesPipelineOrder(t *testing.T) {
	q, env, o := setup(t, `
SELECT * FROM store_sales ss, date_dim d, item i, store s
WHERE ss.ss_sold_date_sk = d.date_dim_sk
  AND ss.ss_item_sk = i.item_sk
  AND ss.ss_store_sk = s.store_sk
  AND d.d_moy = 5`, [][2]string{
		{"ss.ss_sold_date_sk", "d.date_dim_sk"},
		{"ss.ss_item_sk", "i.item_sk"},
		{"ss.ss_store_sk", "s.store_sk"},
	})
	remaining := map[int]bool{}
	for _, e := range q.EPPs {
		remaining[e] = true
	}
	for _, sel := range [][]float64{
		{1e-4, 1e-4, 1e-4},
		{1e-2, 1e-4, 1},
		{1, 1, 1},
	} {
		SetEPPSel(env, q, sel)
		for joinID, p := range o.BestPerSpillClass(env, remaining) {
			if got := plan.SpillJoin(p.Root, remaining); got != joinID {
				t.Errorf("sel=%v: class %d but SpillJoin=%d for %s", sel, joinID, got, p.Root.Signature())
			}
		}
	}
}

func TestIndexScanChosenForSelectiveFilter(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("t", cat, `SELECT * FROM store_sales ss, date_dim d
		WHERE ss.ss_sold_date_sk = d.date_dim_sk AND d.d_dom = 3 AND d.d_moy = 5 AND d.d_year = 2000`)
	if err != nil {
		t.Fatal(err)
	}
	st := stats.FromCatalog(cat)
	env := BuildEnv(q, st)
	o := New(q, cost.NewModel(cost.DefaultParams()))
	p := o.Best(env)
	usedIndex := false
	p.Root.Walk(func(n *plan.Node) {
		if n.IsScan() && n.Scan.Rel == q.RelIndex("d") && n.Scan.Method == plan.IndexScan {
			usedIndex = true
		}
	})
	// d has three stacked filters (combined sel ≈ 1/(28*12*5)); either an
	// index scan is chosen or the INL path bypasses the scan entirely.
	inl := false
	p.Root.Walk(func(n *plan.Node) {
		if n.Join != nil && n.Join.Method == plan.IndexNLJoin {
			inl = true
		}
	})
	if !usedIndex && !inl {
		t.Errorf("expected index usage somewhere in %s", p.Root.Signature())
	}
}

func TestBuildEnv(t *testing.T) {
	q, env, _ := setup(t, threeWay, [][2]string{{"cs.cs_sold_date_sk", "d.date_dim_sk"}})
	if len(env.RawRows) != 3 || len(env.JoinSel) != 2 {
		t.Fatal("env dimensions wrong")
	}
	di := q.RelIndex("d")
	if env.FilteredRows[di] >= env.RawRows[di] {
		t.Error("filter on d_year must reduce rows")
	}
	// Join estimates populated.
	for _, s := range env.JoinSel {
		if s <= 0 || s > 1 {
			t.Errorf("join sel estimate %v out of range", s)
		}
	}
}

func TestSetEPPSelDimensionMismatchPanics(t *testing.T) {
	q, env, _ := setup(t, threeWay, [][2]string{{"cs.cs_sold_date_sk", "d.date_dim_sk"}})
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	SetEPPSel(env, q, []float64{0.1, 0.2})
}

func TestFilteredRowsFloorAtOne(t *testing.T) {
	cat, err := catalog.TPCDS(1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("t", cat, `SELECT * FROM date_dim d WHERE d.d_year = 2000 AND d.d_moy = 1 AND d.d_dom = 1 AND d.d_qoy = 4`)
	if err != nil {
		t.Fatal(err)
	}
	env := BuildEnv(q, stats.FromCatalog(cat))
	if env.FilteredRows[0] < 1 {
		t.Error("filtered rows must be floored at 1")
	}
}

// Columnar projections of the row store. Each relation can carry typed
// column vectors — contiguous []int64 / []float64 values, or
// dictionary-encoded strings — built once at load time alongside the
// row view. The vectorized executor's predicate kernels and join builds
// read these directly instead of chasing expr.Row pointers; everything
// else (tuple engine, index probes, emission) keeps using the rows, so
// the two views must stay in sync: Append invalidates the vectors (see
// storage.go) and BuildColumns rebuilds them.
package storage

import (
	"repro/internal/expr"
)

// Column is the typed columnar projection of one relation column. At
// most one of Ints/Floats/Codes is populated, per Kind:
//
//	KindInt    → Ints[i] is the value of row i (0 where NULL)
//	KindFloat  → Floats[i] likewise
//	KindString → Codes[i] indexes Dict (0 where NULL)
//
// NULLs are word-packed in a separate bitmap; a set bit means the row's
// value is NULL and the typed slot holds the zero value. Columns with
// mixed value kinds (or kinds outside the three above) have no columnar
// projection — Relation.Col returns nil for them and readers fall back
// to the row view.
type Column struct {
	Kind   expr.Kind
	Ints   []int64
	Floats []float64
	Codes  []int32
	Dict   []string

	nulls   []uint64 // nil when the column has no NULLs
	numNull int
}

// HasNulls reports whether any row is NULL in this column.
func (c *Column) HasNulls() bool { return c.numNull > 0 }

// NumNulls returns the number of NULL rows in this column.
func (c *Column) NumNulls() int { return c.numNull }

// Null reports whether row i is NULL.
func (c *Column) Null(i int) bool {
	if c.nulls == nil {
		return false
	}
	return c.nulls[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// NullWords exposes the packed NULL bitmap (64 rows per word, LSB
// first), or nil when the column is NULL-free. Read-only.
func (c *Column) NullWords() []uint64 { return c.nulls }

// String decodes the dictionary value of row i (KindString columns).
func (c *Column) String(i int) string { return c.Dict[c.Codes[i]] }

// BuildColumns (re)builds the typed column vectors from the current
// rows. Call it once after loading; Append discards the vectors along
// with the other derived structures.
func (r *Relation) BuildColumns() {
	cols := make([]*Column, len(r.Cols))
	for ci := range r.Cols {
		cols[ci] = buildColumn(r.Rows, ci)
	}
	r.cols = cols
}

// HasColumns reports whether column vectors have been built.
func (r *Relation) HasColumns() bool { return r.cols != nil }

// Col returns the typed vector for column ordinal i, or nil when the
// vectors are not built, the ordinal is out of range, or the column is
// not columnarizable (mixed value kinds). Callers must treat a nil as
// "use the row view".
func (r *Relation) Col(i int) *Column {
	if r.cols == nil || i < 0 || i >= len(r.cols) {
		return nil
	}
	return r.cols[i]
}

// buildColumn projects one column ordinal out of the rows, or returns
// nil when the column mixes value kinds. An all-NULL (or empty) column
// is typed as KindInt so kernels still have a vector to run over.
func buildColumn(rows []expr.Row, ci int) *Column {
	kind := expr.KindNull
	for _, row := range rows {
		k := row[ci].K
		if k == expr.KindNull {
			continue
		}
		if kind == expr.KindNull {
			kind = k
			continue
		}
		if kind != k {
			return nil // mixed kinds: no columnar projection
		}
	}
	switch kind {
	case expr.KindNull:
		kind = expr.KindInt
	case expr.KindInt, expr.KindFloat, expr.KindString:
	default:
		return nil
	}

	n := len(rows)
	c := &Column{Kind: kind}
	setNull := func(i int) {
		if c.nulls == nil {
			c.nulls = make([]uint64, (n+63)/64)
		}
		c.nulls[uint(i)>>6] |= 1 << (uint(i) & 63)
		c.numNull++
	}
	switch kind {
	case expr.KindInt:
		c.Ints = make([]int64, n)
		for i, row := range rows {
			if v := row[ci]; v.K == expr.KindNull {
				setNull(i)
			} else {
				c.Ints[i] = v.I
			}
		}
	case expr.KindFloat:
		c.Floats = make([]float64, n)
		for i, row := range rows {
			if v := row[ci]; v.K == expr.KindNull {
				setNull(i)
			} else {
				c.Floats[i] = v.F
			}
		}
	case expr.KindString:
		c.Codes = make([]int32, n)
		codes := make(map[string]int32)
		// Code 0 is reserved for NULL slots so Codes' zero value never
		// aliases a real dictionary entry.
		c.Dict = []string{""}
		for i, row := range rows {
			v := row[ci]
			if v.K == expr.KindNull {
				setNull(i)
				continue
			}
			code, ok := codes[v.S]
			if !ok {
				code = int32(len(c.Dict))
				c.Dict = append(c.Dict, v.S)
				codes[v.S] = code
			}
			c.Codes[i] = code
		}
	}
	return c
}

package storage

import (
	"testing"

	"repro/internal/expr"
)

func TestBuildColumnsTypedVectors(t *testing.T) {
	r := NewRelation("t", []string{"i", "f", "s"})
	r.Append(expr.Row{expr.Int(7), expr.Float(1.5), expr.Str("a")})
	r.Append(expr.Row{expr.Int(-3), expr.Float(2.5), expr.Str("b")})
	r.Append(expr.Row{expr.Int(9), expr.Float(0), expr.Str("a")})
	if r.HasColumns() || r.Col(0) != nil {
		t.Fatal("columns must not exist before BuildColumns")
	}
	r.BuildColumns()
	if !r.HasColumns() {
		t.Fatal("HasColumns after build")
	}

	ic := r.Col(0)
	if ic == nil || ic.Kind != expr.KindInt {
		t.Fatalf("int column = %+v", ic)
	}
	if ic.Ints[0] != 7 || ic.Ints[1] != -3 || ic.Ints[2] != 9 {
		t.Errorf("Ints = %v", ic.Ints)
	}
	if ic.HasNulls() || ic.NullWords() != nil {
		t.Error("null-free column must have nil bitmap")
	}

	fc := r.Col(1)
	if fc == nil || fc.Kind != expr.KindFloat || fc.Floats[1] != 2.5 {
		t.Fatalf("float column = %+v", fc)
	}

	sc := r.Col(2)
	if sc == nil || sc.Kind != expr.KindString {
		t.Fatalf("string column = %+v", sc)
	}
	if sc.String(0) != "a" || sc.String(1) != "b" || sc.String(2) != "a" {
		t.Errorf("dict decode = %q %q %q", sc.String(0), sc.String(1), sc.String(2))
	}
	if sc.Codes[0] != sc.Codes[2] || sc.Codes[0] == sc.Codes[1] {
		t.Errorf("dictionary codes not shared: %v", sc.Codes)
	}

	if r.Col(-1) != nil || r.Col(3) != nil {
		t.Error("out-of-range Col must be nil")
	}
}

func TestBuildColumnsNulls(t *testing.T) {
	r := NewRelation("t", []string{"v"})
	for i := int64(0); i < 130; i++ {
		if i%5 == 0 {
			r.Append(expr.Row{expr.Null})
		} else {
			r.Append(expr.Row{expr.Int(i)})
		}
	}
	r.BuildColumns()
	c := r.Col(0)
	if c == nil || c.Kind != expr.KindInt {
		t.Fatalf("column = %+v", c)
	}
	if !c.HasNulls() || c.NumNulls() != 26 {
		t.Fatalf("NumNulls = %d, want 26", c.NumNulls())
	}
	for i := 0; i < 130; i++ {
		if got, want := c.Null(i), i%5 == 0; got != want {
			t.Fatalf("Null(%d) = %v, want %v", i, got, want)
		}
		if i%5 != 0 && c.Ints[i] != int64(i) {
			t.Fatalf("Ints[%d] = %d", i, c.Ints[i])
		}
	}
	// Crossing a bitmap word boundary (rows 64, 128) must be exact.
	if len(c.NullWords()) != 3 {
		t.Errorf("bitmap words = %d, want 3", len(c.NullWords()))
	}
}

func TestBuildColumnsMixedKindFallsBack(t *testing.T) {
	r := NewRelation("t", []string{"m", "ok"})
	r.Append(expr.Row{expr.Int(1), expr.Int(10)})
	r.Append(expr.Row{expr.Str("x"), expr.Int(20)})
	r.BuildColumns()
	if r.Col(0) != nil {
		t.Error("mixed-kind column must have no columnar projection")
	}
	if c := r.Col(1); c == nil || c.Ints[1] != 20 {
		t.Errorf("clean sibling column must still be columnar: %+v", c)
	}
}

func TestBuildColumnsAllNull(t *testing.T) {
	r := NewRelation("t", []string{"v"})
	r.Append(expr.Row{expr.Null})
	r.Append(expr.Row{expr.Null})
	r.BuildColumns()
	c := r.Col(0)
	if c == nil || c.Kind != expr.KindInt || c.NumNulls() != 2 || !c.Null(1) {
		t.Fatalf("all-null column = %+v", c)
	}
}

// Regression for the stale-derived-structure hazard: appending after
// indexes or column vectors were built used to leave them silently out
// of date — lookups would simply miss the new rows. Append now discards
// every derived structure so reads fail loudly (or rebuild correctly).
func TestAppendInvalidatesDerivedStructures(t *testing.T) {
	r := sample()
	r.BuildHashIndex(1)
	r.BuildSortedIndex(0)
	r.BuildColumns()

	r.Append(expr.Row{expr.Int(100), expr.Int(0)})

	if r.HasHashIndex(1) {
		t.Error("hash index must be discarded by Append")
	}
	if r.HasSortedIndex(0) {
		t.Error("sorted index must be discarded by Append")
	}
	if r.HasColumns() || r.Col(0) != nil {
		t.Error("column vectors must be discarded by Append")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HashLookup on a discarded index must panic, not miss rows")
			}
		}()
		r.HashLookup(1, 0)
	}()

	// Rebuilding after the append sees the new row everywhere.
	r.BuildHashIndex(1)
	r.BuildColumns()
	if got := len(r.HashLookup(1, 0)); got != 5 {
		t.Errorf("rebuilt hash index matches = %d, want 5", got)
	}
	if c := r.Col(0); c == nil || c.Ints[10] != 100 {
		t.Errorf("rebuilt column missing appended row: %+v", c)
	}
}

// Append on a relation with no derived structures stays cheap and legal.
func TestAppendBeforeBuildStillWorks(t *testing.T) {
	r := NewRelation("t", []string{"v"})
	r.Append(expr.Row{expr.Int(1)})
	r.Append(expr.Row{expr.Int(2)})
	if r.NumRows() != 2 {
		t.Fatal("plain appends broken")
	}
}

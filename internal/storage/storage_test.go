package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func sample() *Relation {
	r := NewRelation("t", []string{"id", "v"})
	for i := int64(0); i < 10; i++ {
		r.Append(expr.Row{expr.Int(i), expr.Int(i % 3)})
	}
	return r
}

func TestAppendAndNumRows(t *testing.T) {
	r := sample()
	if r.NumRows() != 10 {
		t.Fatalf("NumRows = %d, want 10", r.NumRows())
	}
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	r := NewRelation("t", []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("short row should panic")
		}
	}()
	r.Append(expr.Row{expr.Int(1)})
}

func TestColumnIndex(t *testing.T) {
	r := sample()
	if r.ColumnIndex("v") != 1 || r.ColumnIndex("id") != 0 || r.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex broken")
	}
}

// TestColumnIndexZeroValueFallback pins the linear-scan fallback for
// relations built without NewRelation (no cached name→ordinal map).
func TestColumnIndexZeroValueFallback(t *testing.T) {
	r := &Relation{Name: "z", Cols: []string{"a", "b", "c"}}
	if r.ColumnIndex("c") != 2 || r.ColumnIndex("a") != 0 || r.ColumnIndex("nope") != -1 {
		t.Fatal("zero-value ColumnIndex fallback broken")
	}
}

func TestHashIndex(t *testing.T) {
	r := sample()
	r.BuildHashIndex(1)
	if !r.HasHashIndex(1) || r.HasHashIndex(0) {
		t.Fatal("HasHashIndex broken")
	}
	// v = i%3, so key 0 matches ids 0,3,6,9.
	got := r.HashLookup(1, 0)
	if len(got) != 4 {
		t.Fatalf("HashLookup(0) = %v, want 4 rows", got)
	}
	for _, ord := range got {
		if r.Rows[ord][1].I != 0 {
			t.Errorf("row %d has v=%d, want 0", ord, r.Rows[ord][1].I)
		}
	}
	if r.HashLookup(1, 99) != nil {
		t.Error("missing key should return nil")
	}
}

func TestHashLookupWithoutIndexPanics(t *testing.T) {
	r := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("lookup without index should panic")
		}
	}()
	r.HashLookup(0, 1)
}

func TestHashIndexOnNonIntPanics(t *testing.T) {
	r := NewRelation("t", []string{"s"})
	r.Append(expr.Row{expr.Str("x")})
	defer func() {
		if recover() == nil {
			t.Fatal("hash index on string column should panic")
		}
	}()
	r.BuildHashIndex(0)
}

func TestSortedIndexRange(t *testing.T) {
	r := NewRelation("t", []string{"v"})
	for _, v := range []int64{5, 1, 9, 3, 7} {
		r.Append(expr.Row{expr.Int(v)})
	}
	r.BuildSortedIndex(0)
	if !r.HasSortedIndex(0) || r.HasSortedIndex(1) {
		t.Fatal("HasSortedIndex broken")
	}

	lo, hi := expr.Int(3), expr.Int(7)
	got := r.RangeLookup(0, &lo, &hi)
	if len(got) != 3 {
		t.Fatalf("range [3,7] = %d rows, want 3", len(got))
	}
	prev := int64(-1)
	for _, ord := range got {
		v := r.Rows[ord][0].I
		if v < 3 || v > 7 {
			t.Errorf("value %d outside [3,7]", v)
		}
		if v < prev {
			t.Error("range results not ordered")
		}
		prev = v
	}

	if got := r.RangeLookup(0, nil, nil); len(got) != 5 {
		t.Errorf("unbounded range = %d rows, want 5", len(got))
	}
	lo2 := expr.Int(100)
	if r.RangeLookup(0, &lo2, nil) != nil {
		t.Error("empty range should be nil")
	}
}

func TestRangeLookupWithoutIndexPanics(t *testing.T) {
	r := sample()
	defer func() {
		if recover() == nil {
			t.Fatal("range lookup without index should panic")
		}
	}()
	r.RangeLookup(0, nil, nil)
}

func TestStore(t *testing.T) {
	s := NewStore()
	s.Add(sample())
	if s.Relation("t") == nil || s.Relation("x") != nil {
		t.Fatal("Relation lookup broken")
	}
	if s.MustRelation("t").Name != "t" {
		t.Fatal("MustRelation broken")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("Names = %v", names)
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRelation on missing relation should panic")
		}
	}()
	NewStore().MustRelation("missing")
}

// Property: hash index lookups return exactly the rows a full scan finds.
func TestHashIndexMatchesScanProperty(t *testing.T) {
	f := func(vals []int64, key int64) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		r := NewRelation("p", []string{"v"})
		for _, v := range vals {
			v %= 16 // force collisions
			r.Append(expr.Row{expr.Int(v)})
		}
		key %= 16
		r.BuildHashIndex(0)
		want := 0
		for _, row := range r.Rows {
			if row[0].I == key {
				want++
			}
		}
		return len(r.HashLookup(0, key)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sorted index range lookups agree with a scan filter.
func TestSortedIndexMatchesScanProperty(t *testing.T) {
	f := func(vals []int64, a, b int64) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		if a > b {
			a, b = b, a
		}
		r := NewRelation("p", []string{"v"})
		for _, v := range vals {
			r.Append(expr.Row{expr.Int(v % 64)})
		}
		a, b = a%64, b%64
		if a > b {
			a, b = b, a
		}
		r.BuildSortedIndex(0)
		lo, hi := expr.Int(a), expr.Int(b)
		want := 0
		for _, row := range r.Rows {
			if row[0].I >= a && row[0].I <= b {
				want++
			}
		}
		return len(r.RangeLookup(0, &lo, &hi)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

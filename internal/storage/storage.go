// Package storage implements the in-memory store backing the executor:
// per-table row slices plus hash and sorted indexes on single columns,
// and typed column vectors (see columnar.go) built at load time for the
// vectorized engine. The store is immutable after loading, matching the
// paper's read-only OLAP setting; appending after derived structures
// exist discards them so they can never be silently stale.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/expr"
)

// Relation holds the rows of one table plus any secondary indexes.
type Relation struct {
	// Name is the table name.
	Name string
	// Cols are the column names in row order.
	Cols []string
	// Rows is the tuple storage.
	Rows []expr.Row

	hashIdx   map[int]map[int64][]int32
	sortedIdx map[int][]int32
	colIdx    map[string]int
	cols      []*Column
}

// NewRelation creates an empty relation with the given column names.
func NewRelation(name string, cols []string) *Relation {
	colIdx := make(map[string]int, len(cols))
	for i, c := range cols {
		colIdx[c] = i
	}
	return &Relation{
		Name:      name,
		Cols:      cols,
		hashIdx:   make(map[int]map[int64][]int32),
		sortedIdx: make(map[int][]int32),
		colIdx:    colIdx,
	}
}

// ColumnIndex returns the ordinal of the named column, or -1. Lookups
// hit the name→ordinal map built at load time; relations constructed as
// zero values (without NewRelation) fall back to a linear scan.
func (r *Relation) ColumnIndex(name string) int {
	if r.colIdx != nil {
		if i, ok := r.colIdx[name]; ok {
			return i
		}
		return -1
	}
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Append adds a row; it must have exactly len(Cols) values.
//
// Appending after indexes or column vectors have been built discards
// those derived structures rather than leaving them silently stale:
// index probes over a half-indexed relation would drop the new rows
// without any error. Callers that append post-build must re-run
// BuildHashIndex/BuildSortedIndex/BuildColumns before using them again
// (the accessors panic loudly on a discarded index).
func (r *Relation) Append(row expr.Row) {
	if len(row) != len(r.Cols) {
		panic(fmt.Sprintf("storage: row width %d != %d for %s", len(row), len(r.Cols), r.Name))
	}
	if len(r.hashIdx) > 0 || len(r.sortedIdx) > 0 || r.cols != nil {
		r.invalidateDerived()
	}
	r.Rows = append(r.Rows, row)
}

// invalidateDerived drops every structure derived from the rows.
func (r *Relation) invalidateDerived() {
	if len(r.hashIdx) > 0 {
		r.hashIdx = make(map[int]map[int64][]int32)
	}
	if len(r.sortedIdx) > 0 {
		r.sortedIdx = make(map[int][]int32)
	}
	r.cols = nil
}

// NumRows returns the relation cardinality.
func (r *Relation) NumRows() int { return len(r.Rows) }

// BuildHashIndex builds (or rebuilds) a hash index on an int64 column.
func (r *Relation) BuildHashIndex(col int) {
	idx := make(map[int64][]int32, len(r.Rows))
	for i, row := range r.Rows {
		v := row[col]
		if v.K != expr.KindInt {
			panic(fmt.Sprintf("storage: hash index on non-int column %s.%s", r.Name, r.Cols[col]))
		}
		idx[v.I] = append(idx[v.I], int32(i))
	}
	r.hashIdx[col] = idx
}

// HashLookup returns the row ordinals whose column equals key, or nil.
// It panics if no hash index exists on the column.
func (r *Relation) HashLookup(col int, key int64) []int32 {
	idx, ok := r.hashIdx[col]
	if !ok {
		panic(fmt.Sprintf("storage: no hash index on %s column %d", r.Name, col))
	}
	return idx[key]
}

// HasHashIndex reports whether a hash index exists on the column.
func (r *Relation) HasHashIndex(col int) bool {
	_, ok := r.hashIdx[col]
	return ok
}

// BuildSortedIndex builds a sorted index (row ordinals ordered by the
// column value) enabling range scans.
func (r *Relation) BuildSortedIndex(col int) {
	idx := make([]int32, len(r.Rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		return expr.Compare(r.Rows[idx[a]][col], r.Rows[idx[b]][col]) < 0
	})
	r.sortedIdx[col] = idx
}

// HasSortedIndex reports whether a sorted index exists on the column.
func (r *Relation) HasSortedIndex(col int) bool {
	_, ok := r.sortedIdx[col]
	return ok
}

// RangeLookup returns the row ordinals with lo ≤ value ≤ hi in column
// order, using the sorted index. Nil bounds are unbounded.
func (r *Relation) RangeLookup(col int, lo, hi *expr.Value) []int32 {
	idx, ok := r.sortedIdx[col]
	if !ok {
		panic(fmt.Sprintf("storage: no sorted index on %s column %d", r.Name, col))
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(idx), func(i int) bool {
			return expr.Compare(r.Rows[idx[i]][col], *lo) >= 0
		})
	}
	end := len(idx)
	if hi != nil {
		end = sort.Search(len(idx), func(i int) bool {
			return expr.Compare(r.Rows[idx[i]][col], *hi) > 0
		})
	}
	if start >= end {
		return nil
	}
	return idx[start:end]
}

// Store is a named collection of relations.
type Store struct {
	rels map[string]*Relation
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{rels: make(map[string]*Relation)} }

// Add registers a relation, replacing any previous one of the same name.
func (s *Store) Add(r *Relation) { s.rels[r.Name] = r }

// Relation returns the named relation, or nil.
func (s *Store) Relation(name string) *Relation { return s.rels[name] }

// MustRelation returns the named relation or panics.
func (s *Store) MustRelation(name string) *Relation {
	r := s.rels[name]
	if r == nil {
		panic("storage: unknown relation " + name)
	}
	return r
}

// Names returns the relation names in unspecified order.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
